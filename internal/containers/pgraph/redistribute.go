package pgraph

import (
	"unsafe"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
)

// repartResolver collapses an indexed vertex partition and a mapper into the
// location-keyed translation the pGraph storage uses (one graph base
// container per location, BCID == location id).  It is installed by
// Redistribute in place of the construction-time static resolver.
type repartResolver struct {
	part   partition.Indexed
	mapper partition.Mapper
}

func (r repartResolver) Find(vd int64) partition.Info {
	info := r.part.Find(vd)
	if !info.Valid {
		return info
	}
	return partition.Found(partition.BCID(r.mapper.Map(info.BCID)))
}

func (r repartResolver) OwnerOf(b partition.BCID) int { return int(b) }

// vertexRec is the element record shipped between locations when a pGraph
// repartitions: one vertex with its property and complete out-adjacency
// (undirected mirror records live with their own endpoint, so they travel
// with it).
type vertexRec[VP any, EP any] struct {
	vd    int64
	prop  VP
	edges []bcontainer.Edge[EP]
}

// Redistribute repartitions the vertex set of a static pGraph according to a
// new indexed partition of [0, N) and a new mapper, through the shared
// redistribution engine in package core.  Each vertex moves to the location
// newMapper assigns to its new sub-domain, carrying its adjacency; storage
// granularity stays one graph base container per location.  Dynamic
// strategies already control placement through the descriptor or the
// directory, so they reject redistribution.  Collective.
func (g *Graph[VP, EP]) Redistribute(newPart partition.Indexed, newMapper partition.Mapper) {
	if g.strategy != Static {
		panic("pgraph: Redistribute requires the static strategy; dynamic graphs encode or publish vertex homes instead")
	}
	loc := g.Location()
	var vp VP
	var ep EP
	vpBytes := 8 + int(unsafe.Sizeof(vp))
	edgeBytes := 16 + int(unsafe.Sizeof(ep))
	core.RunMigration(loc, core.MigrationSpec[vertexRec[VP, EP], *bcontainer.Graph[VP, EP]]{
		NewLocal: []partition.BCID{partition.BCID(loc.ID())},
		Alloc: func(b partition.BCID) *bcontainer.Graph[VP, EP] {
			return bcontainer.NewGraph[VP, EP](b)
		},
		Enumerate: func(emit func(vertexRec[VP, EP])) {
			g.ForEachLocalBC(core.Read, func(bc *bcontainer.Graph[VP, EP]) {
				// The old storage is immutable for the whole
				// migration and dropped at install, so the
				// adjacency slice ships without a copy.
				bc.RangeVertices(func(v *Vertex[VP, EP]) bool {
					emit(vertexRec[VP, EP]{vd: v.Descriptor, prop: v.Property, edges: v.Edges})
					return true
				})
			})
		},
		Route: func(rec vertexRec[VP, EP]) (partition.BCID, int) {
			owner := newMapper.Map(newPart.Find(rec.vd).BCID)
			return partition.BCID(owner), owner
		},
		Place: func(bc *bcontainer.Graph[VP, EP], rec vertexRec[VP, EP]) {
			bc.AddVertex(rec.vd, rec.prop)
			for _, e := range rec.edges {
				bc.AddEdge(e.Source, e.Target, e.Property, true)
			}
		},
		Bytes: func(rec vertexRec[VP, EP]) int { return vpBytes + len(rec.edges)*edgeBytes },
		Ops:   vertexMigOpsFor[VP, EP](),
		Install: func(lm *core.LocationManager[*bcontainer.Graph[VP, EP]]) {
			g.ReplaceLocationManager(lm)
			g.SetResolver(repartResolver{part: newPart, mapper: newMapper})
			g.staticPart = newPart
		},
	})
}

// RebalanceVertices redistributes the vertices of a static pGraph into a
// balanced partition with one sub-domain per location.  The vertex domain is
// static, so the balanced proposal needs no load measurement — callers that
// want to rebalance only when it pays off measure with partition.CollectLoad
// and check ShouldRebalance first.  Collective.
func (g *Graph[VP, EP]) RebalanceVertices() {
	n := g.Location().NumLocations()
	p := partition.NewBalanced(domain.NewRange1D(0, g.staticN), n)
	g.Redistribute(p, partition.NewBlockedMapper(p.NumSubdomains(), n))
}
