package pgraph

import (
	"reflect"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Registered-operation routing for pGraph, mirroring pArray's scheme: when
// the property types have wire codecs (transport.RegisterTyped), add_edge
// traffic and vertex migration travel as self-decoding frames executable
// across process boundaries.  Property types without codecs keep the closure
// paths unchanged.
//
// Registrations are keyed by the (VP, EP) pair: the handlers address the
// concrete *bcontainer.Graph[VP, EP] base container, so a graph at the same
// edge-property type but a different vertex-property type needs its own
// entry.  Operation names derive from both codec names (stable across
// processes and registration order); the per-pair result is cached.

// edgeMsg is one shipped add_edge request: the target descriptor, the edge
// property, and the owning graph's multi-edge flag (a per-container option
// that must ride with the request, since the registered handler is shared by
// every graph at this type pair).
type edgeMsg[EP any] struct {
	tgt   int64
	prop  EP
	multi bool
}

var (
	edgeOpsMu  sync.Mutex
	edgeOpsReg = map[[2]reflect.Type]any{} // *core.ElemOps[...] per (VP, EP); nil when uncodeced
	vtxMigMu   sync.Mutex
	vtxMigReg  = map[[2]reflect.Type]any{} // *core.MigrationOps[vertexRec[VP, EP]] per (VP, EP)
)

func propPair[VP any, EP any]() [2]reflect.Type {
	return [2]reflect.Type{
		reflect.TypeOf((*VP)(nil)).Elem(),
		reflect.TypeOf((*EP)(nil)).Elem(),
	}
}

// edgeOpsFor returns the registered add_edge operations for a pGraph at
// (VP, EP), or nil when either property type has no typed codec (closure
// fallback).  Only the set half is used; the get half answers the source
// vertex's out-degree (a cheap, always-available read).
func edgeOpsFor[VP any, EP any]() *core.ElemOps[int64, *bcontainer.Graph[VP, EP], edgeMsg[EP]] {
	t := propPair[VP, EP]()
	edgeOpsMu.Lock()
	defer edgeOpsMu.Unlock()
	if v, ok := edgeOpsReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.ElemOps[int64, *bcontainer.Graph[VP, EP], edgeMsg[EP]])
	}
	vpCodec, vpOK := transport.TypedCodecFor[VP]()
	epCodec, epOK := transport.TypedCodecFor[EP]()
	if !vpOK || !epOK {
		edgeOpsReg[t] = nil
		return nil
	}
	msgCodec := transport.Codec[edgeMsg[EP]]{
		Name: "pgraph.edge-msg[" + epCodec.Name + "]",
		Encode: func(b *transport.Buffer, m edgeMsg[EP]) {
			b.PutVarint(m.tgt)
			epCodec.Encode(b, m.prop)
			b.PutBool(m.multi)
		},
		Decode: func(b *transport.Buffer) edgeMsg[EP] {
			return edgeMsg[EP]{tgt: b.Varint(), prop: epCodec.Decode(b), multi: b.Bool()}
		},
	}
	o := core.RegisterElemOps[int64, *bcontainer.Graph[VP, EP], edgeMsg[EP]](
		"pgraph.edge["+vpCodec.Name+","+epCodec.Name+"]",
		transport.Int64Codec,
		msgCodec,
		func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP], src int64, m edgeMsg[EP]) {
			bc.AddEdge(src, m.tgt, m.prop, m.multi)
		},
		func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP], src int64) edgeMsg[EP] {
			return edgeMsg[EP]{tgt: int64(bc.OutDegree(src))}
		},
	)
	edgeOpsReg[t] = o
	return o
}

// vertexMigOpsFor returns the registered migration operation for
// vertexRec[VP, EP], or nil when either property type has no typed codec.
func vertexMigOpsFor[VP any, EP any]() *core.MigrationOps[vertexRec[VP, EP]] {
	t := propPair[VP, EP]()
	vtxMigMu.Lock()
	defer vtxMigMu.Unlock()
	if v, ok := vtxMigReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.MigrationOps[vertexRec[VP, EP]])
	}
	vpCodec, vpOK := transport.TypedCodecFor[VP]()
	epCodec, epOK := transport.TypedCodecFor[EP]()
	if !vpOK || !epOK {
		vtxMigReg[t] = nil
		return nil
	}
	o := core.RegisterMigrationOps("pgraph.vertex["+vpCodec.Name+","+epCodec.Name+"]",
		transport.Codec[vertexRec[VP, EP]]{
			Name: "pgraph.vertex-rec[" + vpCodec.Name + "," + epCodec.Name + "]",
			Encode: func(b *transport.Buffer, r vertexRec[VP, EP]) {
				b.PutVarint(r.vd)
				vpCodec.Encode(b, r.prop)
				b.PutUvarint(uint64(len(r.edges)))
				for _, e := range r.edges {
					b.PutVarint(e.Source)
					b.PutVarint(e.Target)
					epCodec.Encode(b, e.Property)
				}
			},
			Decode: func(b *transport.Buffer) vertexRec[VP, EP] {
				r := vertexRec[VP, EP]{vd: b.Varint(), prop: vpCodec.Decode(b)}
				n := b.Uvarint()
				if n > uint64(b.Remaining()) {
					b.Fail("vertex record: %d edges, %d bytes left", n, b.Remaining())
					return vertexRec[VP, EP]{}
				}
				r.edges = make([]bcontainer.Edge[EP], n)
				for i := range r.edges {
					r.edges[i] = bcontainer.Edge[EP]{
						Source:   b.Varint(),
						Target:   b.Varint(),
						Property: epCodec.Decode(b),
					}
				}
				return r
			},
		})
	vtxMigReg[t] = o
	return o
}
