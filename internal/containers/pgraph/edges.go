package pgraph

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/runtime"
)

// AddEdgeAsync adds the edge (src → tgt) with the given property,
// asynchronously (the paper's add_edge_async).  The adjacency record is
// stored with the source vertex; for undirected graphs a mirror record
// (tgt → src) is also stored with the target vertex.
func (g *Graph[VP, EP]) AddEdgeAsync(src, tgt int64, prop EP) {
	multi := g.multi
	bytes := 8 + runtime.PayloadBytes(prop) // target descriptor + property
	if g.edgeOps != nil {
		g.edgeOps.Set(&g.Container, src, edgeMsg[EP]{tgt: tgt, prop: prop, multi: multi}, bytes)
		if !g.directed && src != tgt {
			g.edgeOps.Set(&g.Container, tgt, edgeMsg[EP]{tgt: src, prop: prop, multi: multi}, bytes)
		}
		return
	}
	g.InvokeSized(src, core.Write, bytes, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
		bc.AddEdge(src, tgt, prop, multi)
	})
	if !g.directed && src != tgt {
		g.InvokeSized(tgt, core.Write, bytes, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
			bc.AddEdge(tgt, src, prop, multi)
		})
	}
}

// AddEdge adds the edge (src → tgt) and blocks until the source-side record
// is stored, reporting whether it was added (false when a duplicate was
// rejected on a non-multi graph).
func (g *Graph[VP, EP]) AddEdge(src, tgt int64, prop EP) bool {
	multi := g.multi
	added := g.InvokeRet(src, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		return bc.AddEdge(src, tgt, prop, multi)
	}).(bool)
	if added && !g.directed && src != tgt {
		g.Invoke(tgt, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
			bc.AddEdge(tgt, src, prop, multi)
		})
	}
	return added
}

// DeleteEdge removes the first (src → tgt) adjacency record (and the mirror
// record on undirected graphs).  Asynchronous.
func (g *Graph[VP, EP]) DeleteEdge(src, tgt int64) {
	g.Invoke(src, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
		bc.DeleteEdge(src, tgt)
	})
	if !g.directed && src != tgt {
		g.Invoke(tgt, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
			bc.DeleteEdge(tgt, src)
		})
	}
}

// FindEdge returns the property of the first (src → tgt) edge.  Synchronous.
func (g *Graph[VP, EP]) FindEdge(src, tgt int64) (EP, bool) {
	out := g.InvokeRet(src, core.Read, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		e, ok := bc.FindEdge(src, tgt)
		return edgeResult[EP]{prop: e.Property, ok: ok}
	}).(edgeResult[EP])
	return out.prop, out.ok
}

type edgeResult[EP any] struct {
	prop EP
	ok   bool
}

// validDescriptor reports whether vd could possibly name a vertex of this
// graph: inside the static domain for the Static strategy, or carrying a
// legal home location for the dynamic strategies.  Descriptors that fail
// this test are treated as absent without any communication.
func (g *Graph[VP, EP]) validDescriptor(vd int64) bool {
	if vd < 0 {
		return false
	}
	if g.strategy == Static {
		return vd < g.staticN
	}
	return descriptorHome(vd) < g.Location().NumLocations()
}

// HasVertex reports whether the vertex exists anywhere in the graph.
// Synchronous.
func (g *Graph[VP, EP]) HasVertex(vd int64) bool {
	if !g.validDescriptor(vd) {
		return false
	}
	return g.InvokeRet(vd, core.Read, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		return bc.HasVertex(vd)
	}).(bool)
}

// VertexProperty returns the property of vertex vd.  Synchronous.
func (g *Graph[VP, EP]) VertexProperty(vd int64) (VP, bool) {
	if !g.validDescriptor(vd) {
		var zero VP
		return zero, false
	}
	out := g.InvokeRet(vd, core.Read, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		if !bc.HasVertex(vd) {
			var zero VP
			return vpResult[VP]{prop: zero, ok: false}
		}
		return vpResult[VP]{prop: bc.Property(vd), ok: true}
	}).(vpResult[VP])
	return out.prop, out.ok
}

type vpResult[VP any] struct {
	prop VP
	ok   bool
}

// SetVertexProperty replaces the property of vertex vd.  Asynchronous.
func (g *Graph[VP, EP]) SetVertexProperty(vd int64, prop VP) {
	g.Invoke(vd, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
		bc.SetProperty(vd, prop)
	})
}

// ApplyVertex applies fn to the property of vertex vd in place.
// Asynchronous; the update is atomic with respect to other vertex accesses.
func (g *Graph[VP, EP]) ApplyVertex(vd int64, fn func(VP) VP) {
	g.Invoke(vd, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
		bc.ApplyVertex(vd, fn)
	})
}

// OutEdges returns a copy of the out-adjacency of vertex vd.  Synchronous.
func (g *Graph[VP, EP]) OutEdges(vd int64) []Edge[EP] {
	return g.InvokeRet(vd, core.Read, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		return bc.OutEdges(vd)
	}).([]Edge[EP])
}

// OutDegree returns the out-degree of vertex vd.  Synchronous.
func (g *Graph[VP, EP]) OutDegree(vd int64) int {
	return g.InvokeRet(vd, core.Read, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		return bc.OutDegree(vd)
	}).(int)
}

// OutDegreeSplit starts a split-phase out-degree query.
func (g *Graph[VP, EP]) OutDegreeSplit(vd int64) *runtime.FutureOf[int] {
	f := g.InvokeSplit(vd, core.Read, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) any {
		return bc.OutDegree(vd)
	})
	return runtime.NewFutureOf[int](f)
}

// Visit routes fn to the location owning vertex vd and runs it there with
// access to that location's Graph representative and the vertex record.  It
// is the asynchronous traversal primitive used by the pGraph algorithms
// (BFS, connected components, page rank): fn may inspect the adjacency and
// issue further Visit calls (including to local vertices), implementing
// computation migration instead of data fetching.
//
// fn runs outside the container's data bracket so that it can recurse into
// the same base container without self-deadlock; algorithms must therefore
// not mutate the graph structure from inside fn and must synchronise any
// algorithm-private state they update (the graphalgo engines keep that state
// behind their own locks).  Visits to descriptors with no vertex are
// silently dropped.
func (g *Graph[VP, EP]) Visit(vd int64, fn func(og *Graph[VP, EP], v *Vertex[VP, EP])) {
	g.visitHop(vd, fn, 0)
}

func (g *Graph[VP, EP]) visitHop(vd int64, fn func(og *Graph[VP, EP], v *Vertex[VP, EP]), hops int) {
	if hops > 64 {
		panic("pgraph: Visit forwarded too many times; partition cannot resolve the descriptor")
	}
	if !g.validDescriptor(vd) {
		return
	}
	if g.IsLocal(vd) {
		res := g.withLocal(core.Read, func(bc *bcontainer.Graph[VP, EP]) any {
			vert, found := bc.Vertex(vd)
			return vertexResult[VP, EP]{v: vert, ok: found}
		}).(vertexResult[VP, EP])
		if !res.ok {
			return
		}
		fn(g, res.v)
		return
	}
	dest := g.Lookup(vd)
	g.atGraph(dest, func(og *Graph[VP, EP]) { og.visitHop(vd, fn, hops+1) })
}

type vertexResult[VP any, EP any] struct {
	v  *Vertex[VP, EP]
	ok bool
}

// CompactAdjacency repacks every locally stored vertex's adjacency into one
// contiguous CSR edge array (bcontainer.FreezeCSR): per-vertex allocations
// and their capacity slack collapse into a single block while traversal
// order and the mutation API are unchanged — the storage-representation
// switch a static graph makes once construction is done.  Collective; call
// after edge traffic has fenced.  A later edge mutation un-freezes only the
// touched vertex, so correctness never depends on staying compact.
func (g *Graph[VP, EP]) CompactAdjacency() {
	g.ForEachLocalBC(core.Write, func(bc *bcontainer.Graph[VP, EP]) { bc.FreezeCSR() })
	g.Location().Barrier()
}

// LocalAdjacencyCompact reports whether this location's adjacency is
// currently packed in CSR form.
func (g *Graph[VP, EP]) LocalAdjacencyCompact() bool {
	frozen := true
	g.ForEachLocalBC(core.Read, func(bc *bcontainer.Graph[VP, EP]) {
		if !bc.CSRFrozen() {
			frozen = false
		}
	})
	return frozen
}

// NumVertices returns the global number of vertices.  Collective.
func (g *Graph[VP, EP]) NumVertices() int64 { return g.GlobalSize() }

// LocalNumEdges returns the number of adjacency records stored locally.
func (g *Graph[VP, EP]) LocalNumEdges() int64 {
	return g.withLocal(core.Read, func(bc *bcontainer.Graph[VP, EP]) any { return bc.NumEdges() }).(int64)
}

// NumEdges returns the global number of adjacency records (each undirected
// edge counts twice, as it is stored with both endpoints).  Collective.
func (g *Graph[VP, EP]) NumEdges() int64 {
	return runtime.AllReduceSum(g.Location(), g.LocalNumEdges())
}

// LocalVertices returns the descriptors of the vertices stored on this
// location, in insertion order.
func (g *Graph[VP, EP]) LocalVertices() []int64 {
	return g.withLocal(core.Read, func(bc *bcontainer.Graph[VP, EP]) any { return bc.VertexDescriptors() }).([]int64)
}

// RangeLocalVertices applies fn to every locally stored vertex record.
func (g *Graph[VP, EP]) RangeLocalVertices(fn func(v *Vertex[VP, EP]) bool) {
	g.withLocal(core.Read, func(bc *bcontainer.Graph[VP, EP]) any {
		bc.RangeVertices(fn)
		return nil
	})
}

// UpdateLocalVertices applies fn to every locally stored vertex property in
// place, under the write bracket.
func (g *Graph[VP, EP]) UpdateLocalVertices(fn func(vd int64, prop VP) VP) {
	g.withLocal(core.Write, func(bc *bcontainer.Graph[VP, EP]) any {
		bc.RangeVertices(func(v *Vertex[VP, EP]) bool {
			v.Property = fn(v.Descriptor, v.Property)
			return true
		})
		return nil
	})
}

// MemorySize returns the container-wide footprint.  Collective.
func (g *Graph[VP, EP]) MemorySize() core.MemoryUsage {
	var dirBytes int64
	if g.dir != nil {
		dirBytes = g.dir.MemoryBytes()
	}
	return g.GlobalMemory(dirBytes + 64)
}
