package pgraph

import (
	"sync"
	"testing"

	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestStaticGraphConstruction(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		g := New[int, float64](loc, 100)
		if g.Strategy() != Static || !g.Directed() {
			t.Error("defaults wrong")
		}
		if got := g.NumVertices(); got != 100 {
			t.Errorf("vertices = %d", got)
		}
		// Vertices are spread: each location holds a share.
		if n := len(g.LocalVertices()); n != 25 {
			t.Errorf("local vertices = %d, want 25", n)
		}
		// Every descriptor resolves from every location.
		for vd := int64(0); vd < 100; vd += 13 {
			if !g.HasVertex(vd) {
				t.Errorf("vertex %d not found", vd)
			}
		}
		if g.HasVertex(100) {
			t.Error("vertex 100 should not exist")
		}
		loc.Fence()
	})
}

func TestStaticGraphRejectsAddVertex(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		g := New[int, int](loc, 10)
		loc.Fence()
		defer func() {
			if recover() == nil {
				t.Error("add_vertex on a static graph must panic")
			}
			loc.Fence()
		}()
		g.AddVertex(1)
	})
}

func TestStaticGraphEdgesAndProperties(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		g := New[string, int](loc, 40)
		loc.Barrier()
		if loc.ID() == 0 {
			// A ring 0 -> 1 -> ... -> 39 -> 0, plus properties.
			for vd := int64(0); vd < 40; vd++ {
				g.SetVertexProperty(vd, "v")
				g.AddEdgeAsync(vd, (vd+1)%40, int(vd))
			}
		}
		loc.Fence()
		if got := g.NumEdges(); got != 40 {
			t.Errorf("edges = %d", got)
		}
		for vd := int64(0); vd < 40; vd += 7 {
			if d := g.OutDegree(vd); d != 1 {
				t.Errorf("out-degree of %d = %d", vd, d)
			}
			es := g.OutEdges(vd)
			if len(es) != 1 || es[0].Target != (vd+1)%40 {
				t.Errorf("out-edges of %d = %v", vd, es)
			}
			if p, ok := g.FindEdge(vd, (vd+1)%40); !ok || p != int(vd) {
				t.Errorf("edge property of %d = %d,%v", vd, p, ok)
			}
			if _, ok := g.FindEdge(vd, vd); ok {
				t.Errorf("self edge of %d should not exist", vd)
			}
			if p, ok := g.VertexProperty(vd); !ok || p != "v" {
				t.Errorf("vertex property of %d = %q,%v", vd, p, ok)
			}
		}
		if f := g.OutDegreeSplit(3); f.Get() != 1 {
			t.Error("split out-degree wrong")
		}
		// All locations must finish the read-only checks above before any
		// location starts mutating vertex 0 below.
		loc.Barrier()
		// ApplyVertex mutates atomically from all locations.
		g.ApplyVertex(0, func(s string) string { return s + "x" })
		loc.Fence()
		if p, _ := g.VertexProperty(0); len(p) != 1+loc.NumLocations() {
			t.Errorf("property after concurrent applies = %q", p)
		}
		// Delete an edge.
		if loc.ID() == 1 {
			g.DeleteEdge(0, 1)
		}
		loc.Fence()
		if got := g.NumEdges(); got != 39 {
			t.Errorf("edges after delete = %d", got)
		}
		loc.Fence()
	})
}

func TestUndirectedGraphMirrorsEdges(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		g := New[int, int](loc, 30, WithDirected(false), WithMulti(false))
		loc.Barrier()
		if loc.ID() == 0 {
			g.AddEdgeAsync(0, 29, 7)
		}
		loc.Fence()
		if d := g.OutDegree(0); d != 1 {
			t.Errorf("degree(0) = %d", d)
		}
		if d := g.OutDegree(29); d != 1 {
			t.Errorf("degree(29) = %d (mirror edge missing)", d)
		}
		if _, ok := g.FindEdge(29, 0); !ok {
			t.Error("mirror edge not found")
		}
		// Non-multi: duplicate is rejected on the source side.
		if loc.ID() == 0 {
			if g.AddEdge(0, 29, 8) {
				t.Error("duplicate edge accepted on non-multi graph")
			}
		}
		loc.Fence()
		if loc.ID() == 1 {
			g.DeleteEdge(0, 29)
		}
		loc.Fence()
		if g.NumEdges() != 0 {
			t.Errorf("edges after delete = %d (mirror not removed)", g.NumEdges())
		}
		loc.Fence()
	})
}

func testDynamicGraph(t *testing.T, strategy Strategy) {
	t.Helper()
	run(4, func(loc *runtime.Location) {
		g := New[int, int](loc, 0, WithStrategy(strategy))
		if g.Strategy() != strategy {
			t.Errorf("strategy = %v", g.Strategy())
		}
		// Every location adds its own vertices.
		const perLoc = 25
		vds := make([]int64, perLoc)
		for i := 0; i < perLoc; i++ {
			vds[i] = g.AddVertex(loc.ID()*1000 + i)
		}
		loc.Fence()
		if got := g.NumVertices(); got != int64(perLoc*loc.NumLocations()) {
			t.Errorf("vertices = %d", got)
		}
		// Share descriptors with everyone.
		all := runtime.AllGatherT(loc, vds)
		// Every location can read every vertex property (exercises the
		// address translation / forwarding machinery).
		for l, list := range all {
			for i, vd := range list {
				if p, ok := g.VertexProperty(vd); !ok || p != l*1000+i {
					t.Errorf("strategy %v: property of %d = %d,%v", strategy, vd, p, ok)
					return
				}
			}
		}
		// Build edges across locations: each of my vertices points at the
		// corresponding vertex of the next location.
		next := all[(loc.ID()+1)%loc.NumLocations()]
		for i, vd := range vds {
			g.AddEdgeAsync(vd, next[i], 1)
		}
		loc.Fence()
		if got := g.NumEdges(); got != int64(perLoc*loc.NumLocations()) {
			t.Errorf("edges = %d", got)
		}
		if d := g.OutDegree(vds[0]); d != 1 {
			t.Errorf("out-degree = %d", d)
		}
		// All locations must finish their reads before the deletion below.
		loc.Barrier()
		// Delete a vertex and make sure it disappears globally.
		if loc.ID() == 0 {
			g.DeleteVertex(all[1][0])
		}
		loc.Fence()
		if g.HasVertex(all[1][0]) {
			t.Error("deleted vertex still visible")
		}
		if got := g.NumVertices(); got != int64(perLoc*loc.NumLocations()-1) {
			t.Errorf("vertices after delete = %d", got)
		}
		loc.Fence()
	})
}

func TestDynamicEncodedGraph(t *testing.T)   { testDynamicGraph(t, DynamicEncoded) }
func TestDynamicDirectoryGraph(t *testing.T) { testDynamicGraph(t, DynamicDirectory) }

func TestDirectoryForwardingResolvesRemoteDescriptors(t *testing.T) {
	// The defining behaviour of the forwarding strategy: a location that
	// has never seen a descriptor can still operate on it, going through
	// the directory location.
	run(4, func(loc *runtime.Location) {
		g := New[int, int](loc, 0, WithStrategy(DynamicDirectory))
		var vd int64 = -1
		if loc.ID() == 3 {
			vd = g.AddVertex(42)
		}
		loc.Fence()
		vd = runtime.BroadcastT(loc, 3, vd)
		if loc.ID() == 0 {
			// Remote property read, remote apply, remote edge addition.
			if p, ok := g.VertexProperty(vd); !ok || p != 42 {
				t.Errorf("property = %d,%v", p, ok)
			}
			g.ApplyVertex(vd, func(x int) int { return x + 1 })
			g.AddEdgeAsync(vd, vd, 9)
		}
		loc.Fence()
		if p, _ := g.VertexProperty(vd); p != 43 {
			t.Errorf("apply lost: %d", p)
		}
		if d := g.OutDegree(vd); d != 1 {
			t.Errorf("degree = %d", d)
		}
		loc.Fence()
	})
}

func TestAddVertexWithDescriptor(t *testing.T) {
	for _, strat := range []Strategy{DynamicEncoded, DynamicDirectory} {
		strat := strat
		run(3, func(loc *runtime.Location) {
			g := New[string, int](loc, 0, WithStrategy(strat))
			loc.Barrier()
			if loc.ID() == 0 {
				// Create vertices whose encoded home is location 2.
				for i := int64(0); i < 5; i++ {
					g.AddVertexWithDescriptor(int64(2)<<homeShift|i, "explicit")
				}
			}
			loc.Fence()
			if got := g.NumVertices(); got != 5 {
				t.Errorf("strategy %v: vertices = %d", strat, got)
			}
			if loc.ID() == 2 {
				if n := len(g.LocalVertices()); n != 5 {
					t.Errorf("strategy %v: vertices landed on wrong location (%d local)", strat, n)
				}
			}
			if p, ok := g.VertexProperty(int64(2)<<homeShift | 3); !ok || p != "explicit" {
				t.Errorf("strategy %v: property lookup failed", strat)
			}
			loc.Fence()
		})
	}
}

func TestStaticAddVertexWithDescriptorSetsProperty(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		g := New[string, int](loc, 10)
		loc.Barrier()
		if loc.ID() == 1 {
			g.AddVertexWithDescriptor(4, "hello")
		}
		loc.Fence()
		if p, ok := g.VertexProperty(4); !ok || p != "hello" {
			t.Errorf("property = %q,%v", p, ok)
		}
		loc.Fence()
	})
}

func TestVisitRunsAtOwnerAndRecursesLocally(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		g := New[int, int](loc, 16)
		loc.Barrier()
		if loc.ID() == 0 {
			// Chain 0 -> 1 -> 2 -> ... -> 15.
			for vd := int64(0); vd < 15; vd++ {
				g.AddEdgeAsync(vd, vd+1, 0)
			}
		}
		loc.Fence()
		// From location 0, walk the chain with Visit: each visit marks the
		// vertex and visits its successor (possibly local — exercising the
		// no-self-deadlock property).
		var mu sync.Mutex
		visited := map[int64]bool{}
		if loc.ID() == 0 {
			var walk func(og *Graph[int, int], v *Vertex[int, int])
			walk = func(og *Graph[int, int], v *Vertex[int, int]) {
				mu.Lock()
				visited[v.Descriptor] = true
				mu.Unlock()
				for _, e := range v.Edges {
					og.Visit(e.Target, walk)
				}
			}
			g.Visit(0, walk)
		}
		loc.Fence()
		total := runtime.AllReduceSum(loc, int64(len(visited)))
		if total != 16 {
			t.Errorf("visited %d vertices, want 16", total)
		}
		// Visiting a non-existent vertex is silently dropped.
		g.Visit(12345, func(*Graph[int, int], *Vertex[int, int]) {
			t.Error("visit of non-existent vertex executed")
		})
		loc.Fence()
	})
}

func TestLocalVertexTraversalAndUpdate(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		g := New[int, int](loc, 20)
		g.UpdateLocalVertices(func(vd int64, _ int) int { return int(vd) })
		loc.Fence()
		count := 0
		g.RangeLocalVertices(func(v *Vertex[int, int]) bool {
			if v.Property != int(v.Descriptor) {
				t.Errorf("vertex %d property %d", v.Descriptor, v.Property)
			}
			count++
			return true
		})
		if count != 10 {
			t.Errorf("local vertices = %d", count)
		}
		if g.LocalNumEdges() != 0 {
			t.Error("unexpected local edges")
		}
		if g.MemorySize().Total() <= 0 {
			t.Error("memory wrong")
		}
		loc.Fence()
	})
}

func TestStrategyString(t *testing.T) {
	if Static.String() != "static" || DynamicEncoded.String() != "dynamic-no-forwarding" || DynamicDirectory.String() != "dynamic-forwarding" {
		t.Fatal("strategy names wrong")
	}
}

// TestCompactAdjacency freezes a static graph's adjacency into CSR form and
// checks traversal is unchanged, a later mutation still works, and the
// frozen flag reports correctly.
func TestCompactAdjacency(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		const nv = 64
		g := New[int64, int64](loc, nv)
		for vd := int64(loc.ID()); vd < nv; vd += int64(loc.NumLocations()) {
			g.AddEdgeAsync(vd, (vd+1)%nv, vd)
			g.AddEdgeAsync(vd, (vd*3+5)%nv, vd+100)
		}
		loc.Fence()
		if g.LocalAdjacencyCompact() {
			t.Error("adjacency reports compact before CompactAdjacency")
		}
		edgesBefore := g.NumEdges()
		g.CompactAdjacency()
		if !g.LocalAdjacencyCompact() {
			t.Error("adjacency not compact after CompactAdjacency")
		}
		if got := g.NumEdges(); got != edgesBefore {
			t.Errorf("NumEdges after freeze = %d, want %d", got, edgesBefore)
		}
		// Traversal still sees every record.
		if got := g.OutDegree(1); got != 2 {
			t.Errorf("OutDegree(1) = %d, want 2", got)
		}
		if ep, ok := g.FindEdge(2, 3); !ok || ep != 2 {
			t.Errorf("FindEdge(2,3) = (%d,%v), want (2,true)", ep, ok)
		}
		// Mutation after the freeze: only the touched vertex un-packs.
		if loc.ID() == 0 {
			g.AddEdgeAsync(0, 9, 999)
		}
		loc.Fence()
		if got := g.OutDegree(0); got != 3 {
			t.Errorf("OutDegree(0) after post-freeze add = %d, want 3", got)
		}
		if got := g.NumEdges(); got != edgesBefore+1 {
			t.Errorf("NumEdges after post-freeze add = %d, want %d", got, edgesBefore+1)
		}
		loc.Fence()
	})
}
