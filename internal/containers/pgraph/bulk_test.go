package pgraph

import (
	"testing"

	"repro/internal/runtime"
)

// TestAddEdgesBulkEquivalence: a bulk edge batch plus a fence must produce
// exactly the adjacency the elementwise AddEdgeAsync loop produces, on both
// directed and undirected static graphs, including empty batches.
func TestAddEdgesBulkEquivalence(t *testing.T) {
	for _, directed := range []bool{true, false} {
		directed := directed
		name := "directed"
		if !directed {
			name = "undirected"
		}
		t.Run(name, func(t *testing.T) {
			const n = int64(4 * 16)
			m := runtime.NewMachine(4, runtime.DefaultConfig())
			m.Execute(func(loc *runtime.Location) {
				bulk := New[int64, int64](loc, n, WithDirected(directed))
				elem := New[int64, int64](loc, n, WithDirected(directed))

				var batch []EdgeSpec[int64]
				for i := int64(loc.ID()); i < n; i += int64(loc.NumLocations()) {
					batch = append(batch, EdgeSpec[int64]{Src: i, Tgt: (i + 5) % n, Prop: i})
				}
				bulk.AddEdgesBulk(batch)
				for _, e := range batch {
					elem.AddEdgeAsync(e.Src, e.Tgt, e.Prop)
				}
				bulk.AddEdgesBulk(nil) // empty batch is a no-op
				loc.Fence()

				if got, want := bulk.NumEdges(), elem.NumEdges(); got != want {
					t.Errorf("edge counts diverged: bulk=%d elementwise=%d", got, want)
				}
				for vd := int64(0); vd < n; vd++ {
					if got, want := bulk.OutDegree(vd), elem.OutDegree(vd); got != want {
						t.Errorf("vertex %d: bulk out-degree %d, elementwise %d", vd, got, want)
					}
				}
				loc.Fence()
			})
		})
	}
}

// TestApplyVertexBulkEquivalence: the bulk property sweep equals the
// elementwise ApplyVertex loop.
func TestApplyVertexBulkEquivalence(t *testing.T) {
	const n = int64(4 * 16)
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		bulk := New[int64, int64](loc, n)
		elem := New[int64, int64](loc, n)
		var vds []int64
		for i := int64(loc.ID()); i < n; i += int64(loc.NumLocations()) {
			vds = append(vds, i)
		}
		bulk.ApplyVertexBulk(vds, func(p int64) int64 { return p + 1 })
		for _, vd := range vds {
			elem.ApplyVertex(vd, func(p int64) int64 { return p + 1 })
		}
		loc.Fence()
		for vd := int64(0); vd < n; vd++ {
			bp, bok := bulk.VertexProperty(vd)
			ep, eok := elem.VertexProperty(vd)
			if bok != eok || bp != ep {
				t.Errorf("vertex %d: bulk property %d(%v), elementwise %d(%v)", vd, bp, bok, ep, eok)
			}
		}
		loc.Fence()
	})
}

// TestAddVerticesBulk covers the dynamic strategies: a batch of explicit
// descriptors lands on the encoded homes, resolves through both translation
// schemes, and the directory strategy can route edges to the new vertices.
func TestAddVerticesBulk(t *testing.T) {
	for _, strat := range []Strategy{DynamicEncoded, DynamicDirectory} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			m := runtime.NewMachine(4, runtime.DefaultConfig())
			m.Execute(func(loc *runtime.Location) {
				g := New[int64, int64](loc, 0, WithStrategy(strat))
				// Every location creates a batch of vertices homed round-robin
				// across the machine, in a disjoint counter range.
				base := int64(1000 * loc.ID())
				var vs []VertexSpec[int64]
				for i := int64(0); i < 20; i++ {
					home := int((base + i) % int64(loc.NumLocations()))
					vs = append(vs, VertexSpec[int64]{VD: EncodeDescriptor(home, base+i), Prop: base + i})
				}
				g.AddVerticesBulk(vs)
				g.AddVerticesBulk(nil) // empty batch is a no-op
				loc.Fence()
				if got, want := g.NumVertices(), int64(20*loc.NumLocations()); got != want {
					t.Fatalf("vertex count = %d, want %d", got, want)
				}
				for _, v := range vs {
					if !g.HasVertex(v.VD) {
						t.Errorf("vertex %d missing after bulk insertion", v.VD)
					}
					if p, ok := g.VertexProperty(v.VD); !ok || p != v.Prop {
						t.Errorf("vertex %d property = %d(%v), want %d", v.VD, p, ok, v.Prop)
					}
				}
				loc.Fence()
				// Edges into the bulk-created vertices resolve via the
				// strategy's translation (directory lookups included).
				var edges []EdgeSpec[int64]
				for i := 1; i < len(vs); i++ {
					edges = append(edges, EdgeSpec[int64]{Src: vs[i-1].VD, Tgt: vs[i].VD, Prop: 1})
				}
				g.AddEdgesBulk(edges)
				loc.Fence()
				for i := 1; i < len(vs); i++ {
					if d := g.OutDegree(vs[i-1].VD); d != 1 {
						t.Errorf("vertex %d out-degree = %d, want 1", vs[i-1].VD, d)
					}
				}
				loc.Fence()
			})
		})
	}
}
