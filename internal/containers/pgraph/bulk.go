package pgraph

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// Bulk mutation methods: batch vertex and edge insertion.  Graph loading is
// the most RMI-intensive phase of every pGraph experiment (SSCA2 generation
// fires millions of add_edge_async calls); these methods group a whole slice
// of insertions by owning location and ship one sized RMI per destination
// instead of one request per vertex or edge.

// EdgeSpec describes one edge of a bulk insertion.
type EdgeSpec[EP any] struct {
	Src, Tgt int64
	Prop     EP
}

// VertexSpec describes one vertex of a bulk insertion: an explicit
// descriptor (carrying its home location for dynamic strategies) plus its
// property.
type VertexSpec[VP any] struct {
	VD   int64
	Prop VP
}

// AddEdgesBulk inserts every edge of the batch asynchronously.  Adjacency
// records are grouped by the location owning their source vertex (and, for
// undirected graphs, mirror records by target owner) and shipped as one
// sized RMI per destination.  Visible by the next Fence.  The batch slice is
// retained until the operations execute; callers hand over ownership and
// must not mutate it before the next Fence.
func (g *Graph[VP, EP]) AddEdgesBulk(edges []EdgeSpec[EP]) {
	if len(edges) == 0 {
		return
	}
	multi := g.multi
	bytesPerOp := 16 + runtime.PayloadBytes(edges[0].Prop) // endpoints + property
	srcs := make([]int64, len(edges))
	for i, e := range edges {
		srcs[i] = e.Src
	}
	g.InvokeBulk(srcs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP], k int) {
		bc.AddEdge(edges[k].Src, edges[k].Tgt, edges[k].Prop, multi)
	})
	if g.directed {
		return
	}
	// Undirected: mirror records live with the target endpoint.
	var mirrors []int64
	var mirrorIdx []int
	for i, e := range edges {
		if e.Src != e.Tgt {
			mirrors = append(mirrors, e.Tgt)
			mirrorIdx = append(mirrorIdx, i)
		}
	}
	g.InvokeBulk(mirrors, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP], k int) {
		e := edges[mirrorIdx[k]]
		bc.AddEdge(e.Tgt, e.Src, e.Prop, multi)
	})
}

// AddVerticesBulk is the bulk counterpart of AddVertexWithDescriptor: it
// creates every vertex of the batch on its natural home (the location
// encoded in its descriptor), asynchronously — one bulk RMI per home
// location, with directory entries published in per-directory-location
// batches for the DynamicDirectory strategy.  Dynamic strategies only; like
// AddVertexWithDescriptor, callers own the descriptor space they pass in
// (EncodeDescriptor builds descriptors from a home and a counter).  The
// batch slice is retained until the operations execute; do not mutate it
// before the next Fence.
func (g *Graph[VP, EP]) AddVerticesBulk(vs []VertexSpec[VP]) {
	g.requireDynamic("add_vertices_bulk")
	if len(vs) == 0 {
		return
	}
	loc := g.Location()
	bytesPerOp := 8 + runtime.PayloadBytes(vs[0].Prop) // descriptor + property
	// Group by home location (encoded in the descriptor).
	byHome := make(map[int][]int)
	for i, v := range vs {
		byHome[descriptorHome(v.VD)] = append(byHome[descriptorHome(v.VD)], i)
	}
	for home, group := range byHome {
		group := group
		loc.AsyncRMIBulk(home, g.graphHandle, len(group), bytesPerOp*len(group), func(obj any, _ *runtime.Location) {
			og := obj.(*Graph[VP, EP])
			og.withLocal(core.Write, func(bc *bcontainer.Graph[VP, EP]) any {
				for _, k := range group {
					bc.AddVertex(vs[k].VD, vs[k].Prop)
				}
				return nil
			})
			if og.strategy != DynamicDirectory {
				return
			}
			// Publish the new homes from the home location AFTER the
			// vertices exist (like the per-element path): a directory entry
			// must never lead a resolver to a home that has not created the
			// vertex yet.  PublishBulk keeps the traffic batched: one bulk
			// RMI per (home, directory location) pair.
			vds := make([]int64, len(group))
			for i, k := range group {
				vds[i] = vs[k].VD
			}
			og.dir.PublishBulk(vds, partition.BCID(og.Location().ID()))
		})
	}
}

// EncodeDescriptor returns the descriptor a dynamic-strategy vertex would
// receive as the counter-th vertex created on location home.  It lets
// loaders precompute descriptor batches for AddVerticesBulk.
func EncodeDescriptor(home int, counter int64) int64 { return encodeDescriptor(home, counter) }

// ApplyVertexBulk applies fn to the property of every vertex named by vds in
// place, asynchronously: one bulk RMI per owning location (the bulk
// counterpart of ApplyVertex, used by property-update sweeps).  The
// descriptor slice is retained until the operations execute; do not mutate
// it before the next Fence.
func (g *Graph[VP, EP]) ApplyVertexBulk(vds []int64, fn func(VP) VP) {
	g.InvokeBulk(vds, core.Write, 8, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP], k int) {
		bc.ApplyVertex(vds[k], fn)
	})
}
