package pgraph

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestGraphRedistributeEmpty(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		g := New[int, int](loc, 0, WithStrategy(Static))
		g.RebalanceVertices()
		if got := g.NumVertices(); got != 0 {
			t.Errorf("vertices = %d, want 0", got)
		}
		loc.Fence()
	})
}

func TestGraphRedistributeSingleLocation(t *testing.T) {
	const nv = 20
	run(1, func(loc *runtime.Location) {
		g := New[int, int](loc, nv)
		for vd := int64(0); vd < nv; vd++ {
			g.SetVertexProperty(vd, int(vd)*2)
			g.AddEdgeAsync(vd, (vd+1)%nv, int(vd))
		}
		loc.Fence()
		part := partition.NewBlocked(domain.NewRange1D(0, nv), 3)
		g.Redistribute(part, partition.NewBlockedMapper(part.NumSubdomains(), 1))
		for vd := int64(0); vd < nv; vd++ {
			if p, ok := g.VertexProperty(vd); !ok || p != int(vd)*2 {
				t.Errorf("vertex %d property = (%d,%v)", vd, p, ok)
				return
			}
		}
		loc.Fence()
	})
}

func TestGraphRedistributeIdentityNoTraffic(t *testing.T) {
	const nv = 40
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		p := loc.NumLocations()
		g := New[int, int](loc, nv)
		loc.Fence()
		// The construction-time distribution is balanced with one block
		// per location; repeating it moves no vertex.
		before := m.Stats().RMIsSent
		g.Redistribute(partition.NewBalanced(domain.NewRange1D(0, nv), p), partition.NewBlockedMapper(p, p))
		after := m.Stats().RMIsSent
		if after != before {
			t.Errorf("identity repartition sent %d RMIs, want 0", after-before)
		}
		if got := g.NumVertices(); got != nv {
			t.Errorf("vertices = %d, want %d", got, nv)
		}
		loc.Fence()
	})
}

func TestGraphSkewRebalanceRoundTrip(t *testing.T) {
	const nv = 64
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		g := New[int64, int64](loc, nv)
		// Ring edges and per-vertex properties, striped over locations.
		for vd := int64(loc.ID()); vd < nv; vd += int64(p) {
			g.SetVertexProperty(vd, vd*5)
			g.AddEdgeAsync(vd, (vd+1)%nv, vd*100)
		}
		loc.Fence()
		skew, err := partition.NewExplicit(domain.NewRange1D(0, nv), []int64{nv - int64(p) + 1, 1, 1, 1})
		if err != nil {
			t.Fatalf("explicit partition: %v", err)
		}
		g.Redistribute(skew, partition.NewBlockedMapper(p, p))
		if f := partition.CollectLoad(loc, g.LocalSize()).Imbalance(); f < 1.5 {
			t.Errorf("skewed distribution expected, imbalance = %.3f", f)
		}
		loc.Fence()
		g.RebalanceVertices()
		if f := partition.CollectLoad(loc, g.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		if got := g.NumVertices(); got != nv {
			t.Errorf("vertices = %d, want %d", got, nv)
		}
		// Vertices kept their properties and adjacency through both moves.
		for vd := int64(0); vd < nv; vd++ {
			if prop, ok := g.VertexProperty(vd); !ok || prop != vd*5 {
				t.Errorf("vertex %d property = (%d,%v), want (%d,true)", vd, prop, ok, vd*5)
				return
			}
			if ep, ok := g.FindEdge(vd, (vd+1)%nv); !ok || ep != vd*100 {
				t.Errorf("edge %d->%d = (%d,%v), want (%d,true)", vd, (vd+1)%nv, ep, ok, vd*100)
				return
			}
		}
		// Element methods still route correctly after the repartition.
		g.AddEdgeAsync(0, nv/2, -1)
		loc.Fence()
		if _, ok := g.FindEdge(0, nv/2); !ok {
			t.Error("edge added after rebalance not found")
		}
		loc.Fence()
	})
}

func TestGraphRedistributeRejectsDynamic(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		g := New[int, int](loc, 0) // defaults to DynamicEncoded
		defer func() {
			if recover() == nil {
				t.Error("Redistribute on a dynamic graph should panic")
			}
		}()
		g.Redistribute(partition.NewBalanced(domain.NewRange1D(0, 1), 1), partition.NewBlockedMapper(1, 1))
	})
}
