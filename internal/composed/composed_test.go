package composed

import (
	"testing"

	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestArrayOfArraysPaperExample(t *testing.T) {
	// The paper's Fig. 3 example: pApA(3) with inner sizes 2, 3, 4.
	run(2, func(loc *runtime.Location) {
		c := NewArrayOfArrays[int](loc, []int64{2, 3, 4})
		if c.OuterSize() != 3 || c.TotalSize() != 9 {
			t.Errorf("outer = %d total = %d", c.OuterSize(), c.TotalSize())
		}
		loc.Barrier()
		// Composed GID access: pApA.get_element(1).get_element(0).
		if loc.ID() == 0 {
			c.Set(GID2{Outer: 1, Inner: 0}, 42)
			c.Set(GID2{Outer: 2, Inner: 3}, 7)
		}
		c.Fence()
		if got := c.Get(GID2{Outer: 1, Inner: 0}); got != 42 {
			t.Errorf("composed get = %d", got)
		}
		if got := c.Inner(2).Get(3); got != 7 {
			t.Errorf("inner get = %d", got)
		}
		loc.Fence()
	})
}

func TestArrayOfArraysNestedAlgorithms(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		rows, cols := int64(6), int64(20)
		sizes := make([]int64, rows)
		for i := range sizes {
			sizes[i] = cols
		}
		c := NewArrayOfArrays[int64](loc, sizes)
		// Fill row i with values i*1000 + j, then take the per-row minimum
		// (the Fig. 62 row-minimum kernel).
		c.NestedFill(func(outer, inner int64) int64 { return outer*1000 + inner })
		mins := c.NestedReduce(func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		})
		for i, m := range mins {
			if m != int64(i)*1000 {
				t.Errorf("row %d min = %d, want %d", i, m, int64(i)*1000)
			}
		}
		loc.Fence()
	})
}

func TestListOfArraysComposition(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		rows, cols := int64(8), int64(10)
		sizes := make([]int64, rows)
		for i := range sizes {
			sizes[i] = cols
		}
		c := NewListOfArrays[int64](loc, sizes)
		if c.OuterSize() != rows {
			t.Errorf("outer = %d", c.OuterSize())
		}
		// The outer pList holds one reference per row, spread across
		// locations.
		if got := c.Outer().Size(); got != rows {
			t.Errorf("outer list size = %d", got)
		}
		c.NestedFill(func(outer, inner int64) int64 { return outer + inner })
		sums := c.NestedReduce(func(a, b int64) int64 { return a + b })
		for i, s := range sums {
			want := int64(i)*cols + cols*(cols-1)/2
			if s != want {
				t.Errorf("row %d sum = %d, want %d", i, s, want)
			}
		}
		if c.Inner(0).Size() != cols {
			t.Error("inner size wrong")
		}
		loc.Fence()
	})
}
