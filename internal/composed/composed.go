// Package composed implements pContainer composition (Chapter IV.C and the
// Fig. 61/62 study): containers whose elements are themselves pContainers,
// supporting nested-parallel algorithms over the hierarchy.
//
// In the SPMD model every inner container is constructed collectively, so
// each location holds its own representative of every level; the composed
// GID of an element is the tuple (outer index, inner index), and nested
// algorithm invocations run an inner pAlgorithm per outer element.
package composed

import (
	"repro/internal/containers/parray"
	"repro/internal/containers/plist"
	"repro/internal/palgo"
	"repro/internal/runtime"
	"repro/internal/views"
)

// GID2 is the composed GID of a two-level container: the outer element index
// and the GID within the inner container.
type GID2 struct {
	Outer, Inner int64
}

// ArrayOfArrays is a pArray whose elements are pArrays (the paper's
// p_array<p_array<T>> example, Fig. 3): outer element i is a distributed
// inner pArray with its own size.
type ArrayOfArrays[T any] struct {
	loc   *runtime.Location
	inner []*parray.Array[T]
}

// NewArrayOfArrays constructs the composed container with one inner pArray
// per entry of innerSizes.  Collective: every location passes the same
// sizes.
func NewArrayOfArrays[T any](loc *runtime.Location, innerSizes []int64) *ArrayOfArrays[T] {
	c := &ArrayOfArrays[T]{loc: loc}
	for _, n := range innerSizes {
		c.inner = append(c.inner, parray.New[T](loc, n))
	}
	return c
}

// OuterSize returns the number of inner containers.
func (c *ArrayOfArrays[T]) OuterSize() int64 { return int64(len(c.inner)) }

// Inner returns the i-th inner pArray (this location's representative).
func (c *ArrayOfArrays[T]) Inner(i int64) *parray.Array[T] { return c.inner[i] }

// TotalSize returns the number of leaf elements in the composed hierarchy.
func (c *ArrayOfArrays[T]) TotalSize() int64 {
	var n int64
	for _, a := range c.inner {
		n += a.Size()
	}
	return n
}

// Get reads the leaf element with composed GID (outer, inner), equivalent to
// the paper's pApA.get_element(i).get_element(j).  Synchronous.
func (c *ArrayOfArrays[T]) Get(g GID2) T { return c.inner[g.Outer].Get(g.Inner) }

// Set writes the leaf element with composed GID (outer, inner).
// Asynchronous.
func (c *ArrayOfArrays[T]) Set(g GID2, v T) { c.inner[g.Outer].Set(g.Inner, v) }

// Fence forwards to the RTS fence.
func (c *ArrayOfArrays[T]) Fence() { c.loc.Fence() }

// NestedReduce runs an inner reduction (p_accumulate) over every inner
// pArray — the nested pAlgorithm invocation of Fig. 61 — and returns the
// per-outer-element results, replicated on every location.  Collective.
func (c *ArrayOfArrays[T]) NestedReduce(op func(a, b T) T) []T {
	out := make([]T, len(c.inner))
	for i, a := range c.inner {
		v, ok := palgo.Reduce(c.loc, views.NewArrayNative(a), op)
		if ok {
			out[i] = v
		}
	}
	return out
}

// NestedFill fills every inner pArray using fn(outer, inner) — a nested
// p_generate.  Collective.
func (c *ArrayOfArrays[T]) NestedFill(fn func(outer, inner int64) T) {
	for i, a := range c.inner {
		i := int64(i)
		palgo.Generate(c.loc, views.NewArrayNative(a), func(j int64) T { return fn(i, j) })
	}
}

// ListOfArrays composes a pList with pArray elements (the paper's
// p_list<p_array<T>>): the outer sequence is a pList whose elements refer to
// collectively constructed inner pArrays.
type ListOfArrays[T any] struct {
	loc   *runtime.Location
	outer *plist.List[int64]
	inner []*parray.Array[T]
}

// NewListOfArrays constructs the composed container with one inner pArray
// per entry of innerSizes; inner container references are distributed over
// the outer pList with push-anywhere (each location holds a share of the
// outer sequence).  Collective.
func NewListOfArrays[T any](loc *runtime.Location, innerSizes []int64) *ListOfArrays[T] {
	c := &ListOfArrays[T]{loc: loc, outer: plist.New[int64](loc)}
	for i, n := range innerSizes {
		c.inner = append(c.inner, parray.New[T](loc, n))
		// Distribute outer elements round-robin over locations.
		if i%loc.NumLocations() == loc.ID() {
			c.outer.PushAnywhere(int64(i))
		}
	}
	loc.Fence()
	return c
}

// OuterSize returns the number of inner containers.
func (c *ListOfArrays[T]) OuterSize() int64 { return int64(len(c.inner)) }

// Inner returns the i-th inner pArray.
func (c *ListOfArrays[T]) Inner(i int64) *parray.Array[T] { return c.inner[i] }

// Outer returns the outer pList of inner-container references.
func (c *ListOfArrays[T]) Outer() *plist.List[int64] { return c.outer }

// NestedFill fills every inner pArray using fn(outer, inner).  Collective.
func (c *ListOfArrays[T]) NestedFill(fn func(outer, inner int64) T) {
	for i, a := range c.inner {
		i := int64(i)
		palgo.Generate(c.loc, views.NewArrayNative(a), func(j int64) T { return fn(i, j) })
	}
}

// NestedReduce traverses the outer pList (each location its local segment)
// and runs the inner reduction for the referenced inner pArrays.  Because
// inner reductions are collective, the traversal is driven by outer index
// rather than by segment, with each location contributing the rows its
// segment holds; the per-row results are returned replicated on every
// location.  Collective.
func (c *ListOfArrays[T]) NestedReduce(op func(a, b T) T) []T {
	out := make([]T, len(c.inner))
	for i, a := range c.inner {
		v, ok := palgo.Reduce(c.loc, views.NewArrayNative(a), op)
		if ok {
			out[i] = v
		}
	}
	return out
}
