// Package euler implements the Euler-tour technique of the paper's pList
// application study (Chapter X.H): building the Euler tour of a distributed
// tree, ranking it with pointer jumping (parallel list ranking), and the
// tree applications built on top of it (rooting the tree at a designated
// root and computing subtree sizes).
//
// The tree lives in a pGraph, the arc-identifier directory in a pHashMap,
// and the successor/distance arrays of the list-ranking phase in pArrays —
// the computation is deliberately expressed with the library's own
// containers, as the paper's implementation is.
package euler

import (
	"sort"

	"repro/internal/containers/parray"
	"repro/internal/containers/passoc"
	"repro/internal/containers/pgraph"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// ArcKey identifies one directed arc (twin) of a tree edge.
type ArcKey struct {
	From, To int64
}

func arcHash(k ArcKey) uint64 {
	return partition.Int64Hash(k.From*1_000_003 ^ k.To)
}

// Tour is the result of BuildTour: the Euler tour of the tree, ready for
// ranking and tree applications.
type Tour struct {
	// Graph is the (undirected) tree.
	Graph *pgraph.Graph[int8, int8]
	// Root is the tree root descriptor.
	Root int64
	// NumArcs is the total number of directed arcs (2 × edges).
	NumArcs int64
	// ArcIDs maps an arc to its dense global index.
	ArcIDs *passoc.HashMap[ArcKey, int64]
	// Succ[i] is the index of the arc following arc i in the tour, or -1
	// for the final arc.
	Succ *parray.Array[int64]
	// arcsByID records, for this location's arcs, the ArcKey of each local
	// arc index.
	localArcs map[int64]ArcKey
	// firstArc is the index of the tour's first arc (root → first child).
	firstArc int64
}

// BuildTree loads the (parent, child) edge list into an undirected dynamic
// pGraph.  Every location passes its own edge and vertex lists (as produced
// by workload.TreeEdges).  Collective.
func BuildTree(loc *runtime.Location, vertices []int64, edges [][2]int64) *pgraph.Graph[int8, int8] {
	g := pgraph.New[int8, int8](loc, 0,
		pgraph.WithStrategy(pgraph.DynamicEncoded),
		pgraph.WithDirected(false),
		pgraph.WithMulti(false))
	for _, vd := range vertices {
		g.AddVertexWithDescriptor(vd, 0)
	}
	loc.Fence()
	for _, e := range edges {
		g.AddEdgeAsync(e[0], e[1], 0)
	}
	loc.Fence()
	return g
}

// BuildTour constructs the Euler tour of the tree rooted at root: it
// enumerates the directed arcs, assigns dense global arc indices, and fills
// the successor array succ[arc(u,v)] = arc(v, next neighbour of v after u).
// Collective.
func BuildTour(loc *runtime.Location, g *pgraph.Graph[int8, int8], root int64) *Tour {
	// Phase 1: count local arcs (out-edges of local vertices) and assign
	// dense global indices: this location's arcs occupy
	// [offset, offset+localArcs).
	localArcs := int64(0)
	g.RangeLocalVertices(func(v *pgraph.Vertex[int8, int8]) bool {
		localArcs += int64(len(v.Edges))
		return true
	})
	offset := runtime.ExclusiveScan(loc, localArcs, 0, func(a, b int64) int64 { return a + b })
	numArcs := runtime.AllReduceSum(loc, localArcs)

	arcIDs := passoc.NewHashMap[ArcKey, int64](loc, arcHash)
	succ := parray.New[int64](loc, numArcs)
	t := &Tour{Graph: g, Root: root, NumArcs: numArcs, ArcIDs: arcIDs, Succ: succ,
		localArcs: make(map[int64]ArcKey)}

	// Publish arc indices: arcs are numbered in local traversal order with
	// a deterministic (sorted) adjacency order per vertex.
	next := offset
	g.RangeLocalVertices(func(v *pgraph.Vertex[int8, int8]) bool {
		for _, tgt := range sortedNeighbours(v) {
			key := ArcKey{From: v.Descriptor, To: tgt}
			arcIDs.Insert(key, next)
			t.localArcs[next] = key
			next++
		}
		return true
	})
	loc.Fence()

	// Phase 2: successor of arc (u → v) is arc (v → w), where w follows u
	// in v's circular adjacency order.  The owner of v knows both v's
	// adjacency and the index of (v → w); it looks up the index of (u → v)
	// in the directory and writes the successor entry.
	g.RangeLocalVertices(func(v *pgraph.Vertex[int8, int8]) bool {
		nbrs := sortedNeighbours(v)
		for i, u := range nbrs {
			w := nbrs[(i+1)%len(nbrs)]
			out, okOut := arcIDs.Find(ArcKey{From: v.Descriptor, To: w})
			in, okIn := arcIDs.Find(ArcKey{From: u, To: v.Descriptor})
			if okOut && okIn {
				succ.Set(in, out)
			}
		}
		return true
	})
	loc.Fence()

	// Phase 3: linearise the cycle: the tour starts with (root → first
	// neighbour) and ends with (last neighbour → root), whose successor is
	// set to -1.
	if g.IsLocal(root) {
		g.RangeLocalVertices(func(v *pgraph.Vertex[int8, int8]) bool {
			if v.Descriptor != root {
				return true
			}
			nbrs := sortedNeighbours(v)
			if len(nbrs) == 0 {
				return false
			}
			first, _ := arcIDs.Find(ArcKey{From: root, To: nbrs[0]})
			t.firstArc = first
			last, ok := arcIDs.Find(ArcKey{From: nbrs[len(nbrs)-1], To: root})
			if ok {
				succ.Set(last, -1)
			}
			return false
		})
	}
	loc.Fence()
	t.firstArc = runtime.AllReduceMax(loc, func() int64 {
		if g.IsLocal(root) {
			return t.firstArc
		}
		return -1
	}())
	return t
}

// sortedNeighbours returns a vertex's neighbour descriptors in ascending
// order, the deterministic circular order the tour uses.
func sortedNeighbours(v *pgraph.Vertex[int8, int8]) []int64 {
	out := make([]int64, 0, len(v.Edges))
	for _, e := range v.Edges {
		out = append(out, e.Target)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rank performs parallel list ranking on the tour's successor array using
// pointer jumping and returns a pArray holding, for every arc, its position
// in the tour (0 for the first arc).  Collective.
//
// The jumping is double-buffered: every superstep reads only the previous
// superstep's dist/jump arrays and writes the next ones, so concurrent
// remote reads never observe half-updated state.
func (t *Tour) Rank(loc *runtime.Location) *parray.Array[int64] {
	n := t.NumArcs
	// dist[i]: number of arcs from i to the end of the list following
	// successor pointers; jump[i]: current jump target.
	dist := parray.New[int64](loc, n)
	jump := parray.New[int64](loc, n)
	nextDist := parray.New[int64](loc, n)
	nextJump := parray.New[int64](loc, n)
	// Initialise from the successor array: the terminal arc has distance 0.
	blocks := balancedBlocks(loc, n)
	for i := blocks.Lo; i < blocks.Hi; i++ {
		s := t.Succ.Get(i)
		jump.Set(i, s)
		if s < 0 {
			dist.Set(i, 0)
		} else {
			dist.Set(i, 1)
		}
	}
	loc.Fence()
	// Pointer jumping: O(log n) supersteps.
	for {
		changed := int64(0)
		for i := blocks.Lo; i < blocks.Hi; i++ {
			d := dist.Get(i)
			j := jump.Get(i)
			if j < 0 {
				nextDist.Set(i, d)
				nextJump.Set(i, -1)
				continue
			}
			nextDist.Set(i, d+dist.Get(j))
			nextJump.Set(i, jump.Get(j))
			changed = 1
		}
		loc.Fence()
		dist, nextDist = nextDist, dist
		jump, nextJump = nextJump, jump
		if runtime.AllReduceSum(loc, changed) == 0 {
			break
		}
	}
	// Position in the tour = (length of the tour - 1) - distance-to-end.
	rank := parray.New[int64](loc, n)
	for i := blocks.Lo; i < blocks.Hi; i++ {
		rank.Set(i, n-1-dist.Get(i))
	}
	loc.Fence()
	return rank
}

// balancedBlocks returns this location's balanced share of [0, n).
func balancedBlocks(loc *runtime.Location, n int64) (r struct{ Lo, Hi int64 }) {
	per := n / int64(loc.NumLocations())
	rem := n % int64(loc.NumLocations())
	lo := int64(loc.ID())*per + min64(int64(loc.ID()), rem)
	sz := per
	if int64(loc.ID()) < rem {
		sz++
	}
	r.Lo, r.Hi = lo, lo+sz
	return r
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TreeFunctions is the result of Applications: the tree structure recovered
// from the ranked Euler tour.  Each location holds the entries for the child
// vertices whose descending (parent → child) arc it stores; the union over
// all locations covers every non-root vertex exactly once.
type TreeFunctions struct {
	// Parent maps a child vertex to its parent.
	Parent map[int64]int64
	// SubtreeSize maps a vertex to the number of vertices in its subtree
	// (including itself); the root's entry is present on its owner.
	SubtreeSize map[int64]int64
}

// Applications derives the classic Euler-tour applications from the ranked
// tour: rooting the tree (parent function) and subtree sizes.  Collective.
func (t *Tour) Applications(loc *runtime.Location, rank *parray.Array[int64]) *TreeFunctions {
	res := &TreeFunctions{Parent: make(map[int64]int64), SubtreeSize: make(map[int64]int64)}

	// For every locally stored arc (u → v), fetch the rank of the twin
	// (v → u).  The lower-ranked twin is the "descending" arc: u is v's
	// parent.  Subtree size of v = (rank(v→u) − rank(u→v) + 1) / 2.
	for id, key := range t.localArcs {
		twin, ok := t.ArcIDs.Find(ArcKey{From: key.To, To: key.From})
		if !ok {
			continue
		}
		myRank := rank.Get(id)
		twinRank := rank.Get(twin)
		if myRank < twinRank {
			child := key.To
			res.Parent[child] = key.From
			res.SubtreeSize[child] = (twinRank - myRank + 1) / 2
		}
	}
	loc.Fence()
	// The root's subtree is the whole tree.
	total := t.Graph.NumVertices()
	if t.Graph.IsLocal(t.Root) {
		res.SubtreeSize[t.Root] = total
	}
	loc.Fence()
	return res
}
