package euler

import (
	"testing"

	"repro/internal/runtime"
	"repro/internal/workload"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

// buildSmallTree constructs, on every location, the same small rooted tree:
//
//	     0
//	   /   \
//	  1     2
//	 / \     \
//	3   4     5
//
// with vertex descriptors as shown (all owned by location 0 when P == 1, or
// spread when descriptors encode other homes — here all plain small ints so
// they live on location 0 under the DynamicEncoded strategy).
func smallTreeEdges() ([][2]int64, []int64) {
	edges := [][2]int64{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}}
	vertices := []int64{0, 1, 2, 3, 4, 5}
	return edges, vertices
}

func TestEulerTourSmallTree(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		edges, vertices := smallTreeEdges()
		var g = BuildTree(loc, ifLoc0(loc, vertices), ifLoc0Edges(loc, edges))
		if g.NumVertices() != 6 {
			t.Errorf("vertices = %d", g.NumVertices())
		}
		tour := BuildTour(loc, g, 0)
		if tour.NumArcs != 10 {
			t.Errorf("arcs = %d, want 10 (2 per tree edge)", tour.NumArcs)
		}
		rank := tour.Rank(loc)
		// The ranks must be a permutation of 0..NumArcs-1: check that the
		// sum matches.
		var localSum int64
		rank.RangeLocal(func(_ int64, r int64) bool { localSum += r; return true })
		total := runtime.AllReduceSum(loc, localSum)
		want := tour.NumArcs * (tour.NumArcs - 1) / 2
		if total != want {
			t.Errorf("rank sum = %d, want %d (ranks must be a permutation)", total, want)
		}
		// Applications: parents and subtree sizes.
		fns := tour.Applications(loc, rank)
		parents := map[int64]int64{}
		sizes := map[int64]int64{}
		gatherMaps(loc, fns.Parent, parents)
		gatherMaps(loc, fns.SubtreeSize, sizes)
		if loc.ID() == 0 {
			wantParents := map[int64]int64{1: 0, 2: 0, 3: 1, 4: 1, 5: 2}
			for child, p := range wantParents {
				if parents[child] != p {
					t.Errorf("parent(%d) = %d, want %d", child, parents[child], p)
				}
			}
			wantSizes := map[int64]int64{0: 6, 1: 3, 2: 2, 3: 1, 4: 1, 5: 1}
			for v, s := range wantSizes {
				if sizes[v] != s {
					t.Errorf("subtree(%d) = %d, want %d", v, sizes[v], s)
				}
			}
		}
		loc.Fence()
	})
}

// ifLoc0 passes the payload on location 0 only (the tree is defined once).
func ifLoc0(loc *runtime.Location, vs []int64) []int64 {
	if loc.ID() == 0 {
		return vs
	}
	return nil
}

func ifLoc0Edges(loc *runtime.Location, es [][2]int64) [][2]int64 {
	if loc.ID() == 0 {
		return es
	}
	return nil
}

// gatherMaps merges every location's map into dst on every location.
func gatherMaps(loc *runtime.Location, local map[int64]int64, dst map[int64]int64) {
	type kv struct{ K, V int64 }
	flat := make([]kv, 0, len(local))
	for k, v := range local {
		flat = append(flat, kv{k, v})
	}
	all := runtime.AllGatherT(loc, flat)
	for _, part := range all {
		for _, e := range part {
			dst[e.K] = e.V
		}
	}
}

func TestEulerTourDistributedForest(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		p := workload.ForestParams{SubtreesPerLocation: 2, SubtreeHeight: 3}
		edges, vertices, root := workload.TreeEdges(loc, p)
		g := BuildTree(loc, vertices, edges)
		nVerts := g.NumVertices()
		wantVerts := int64(4*2*7 + 1)
		if nVerts != wantVerts {
			t.Errorf("vertices = %d, want %d", nVerts, wantVerts)
		}
		tour := BuildTour(loc, g, root)
		if tour.NumArcs != 2*(wantVerts-1) {
			t.Errorf("arcs = %d, want %d", tour.NumArcs, 2*(wantVerts-1))
		}
		rank := tour.Rank(loc)
		var localSum int64
		rank.RangeLocal(func(_ int64, r int64) bool { localSum += r; return true })
		total := runtime.AllReduceSum(loc, localSum)
		want := tour.NumArcs * (tour.NumArcs - 1) / 2
		if total != want {
			t.Errorf("rank sum = %d, want %d", total, want)
		}
		fns := tour.Applications(loc, rank)
		// Every non-root vertex receives exactly one parent across the
		// machine; the root's subtree is the whole tree.
		parentCount := runtime.AllReduceSum(loc, int64(len(fns.Parent)))
		if parentCount != wantVerts-1 {
			t.Errorf("parents assigned = %d, want %d", parentCount, wantVerts-1)
		}
		sizes := map[int64]int64{}
		gatherMaps(loc, fns.SubtreeSize, sizes)
		if sizes[root] != wantVerts {
			t.Errorf("root subtree size = %d, want %d", sizes[root], wantVerts)
		}
		// Each subtree root (attached directly under the global root) has a
		// complete binary subtree of 7 vertices.
		perSubtree := int64(7)
		count7 := 0
		for _, s := range sizes {
			if s == perSubtree {
				count7++
			}
		}
		if count7 < 4*2 {
			t.Errorf("found %d subtrees of size 7, want at least 8", count7)
		}
		loc.Fence()
	})
}
