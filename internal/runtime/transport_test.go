package runtime

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/transport"
)

// mixedWorkloadStats runs one deterministic workload exercising every RMI
// flavour over the given transport and returns the machine's folded
// statistics plus the wire identity and counters of the run.  The workload's
// correctness is asserted inside; the caller compares the stats across
// transports.
func mixedWorkloadStats(t *testing.T, factory TransportFactory) (Stats, string, transport.WireStats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Transport = factory
	m := NewMachine(4, cfg)
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		p := loc.NumLocations()
		for d := 0; d < p; d++ {
			if d == loc.ID() {
				continue
			}
			for i := 0; i < 40; i++ {
				loc.AsyncRMISized(d, h, 16, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			loc.AsyncRMIUrgent(d, h, func(o any, _ *Location) { o.(*counterObj).add(10) })
			loc.AsyncRMIBulk(d, h, 8, 64, func(o any, _ *Location) { o.(*counterObj).add(100) })
			got := SyncRMIT(loc, d, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
			if got < 0 {
				t.Errorf("sync rmi returned %d", got)
			}
			fut := SplitRMIT(loc, d, h, func(o any, _ *Location) int64 { o.(*counterObj).add(1000); return o.(*counterObj).get() })
			if fut.Get() < 1000 {
				t.Error("split rmi observed value before its own add")
			}
		}
		loc.Fence()
		want := int64((40 + 10 + 100 + 1000) * (p - 1))
		if got := obj.get(); got != want {
			t.Errorf("loc %d: counter = %d, want %d", loc.ID(), got, want)
		}
	})
	return m.Stats(), m.TransportName(), m.WireStats()
}

// TestCrossTransportStatsEquivalence pins the transport-independence
// contract: the machine statistics are counted at logical send/execute time,
// so the same deterministic workload must produce IDENTICAL counters over
// shared memory, the in-process wire protocol, real TCP loopback sockets and
// the fault-injected chaos wire.
func TestCrossTransportStatsEquivalence(t *testing.T) {
	baseline, name, ws := mixedWorkloadStats(t, InprocTransport)
	if name != "inproc" {
		t.Fatalf("inproc transport named %q", name)
	}
	if ws != (transport.WireStats{}) {
		t.Fatalf("inproc transport reported wire traffic: %+v", ws)
	}
	cases := []struct {
		name    string
		factory TransportFactory
	}{
		{"reliable+wire-inproc", WireTransport},
		{"reliable+tcp", TCPLoopbackTransport},
		{"reliable+chaos+wire-inproc", ChaosTransport(transport.DefaultChaosConfig())},
	}
	var wireDataFrames int64 = -1
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, name, ws := mixedWorkloadStats(t, tc.factory)
			if s != baseline {
				t.Errorf("stats diverge from inproc:\n  inproc: %+v\n  %s: %+v", baseline, name, s)
			}
			if name != tc.name {
				t.Errorf("transport named %q, want %q", name, tc.name)
			}
			if ws.DataFrames == 0 || ws.FramesSent == 0 || ws.BytesSent == 0 {
				t.Errorf("wire transport moved no frames: %+v", ws)
			}
			// First-send data frames mirror the logical batch count, so they
			// too must agree across wires (retransmits are counted apart).
			if wireDataFrames == -1 {
				wireDataFrames = ws.DataFrames
			} else if ws.DataFrames != wireDataFrames {
				t.Errorf("data frames diverge across wires: %d vs %d", ws.DataFrames, wireDataFrames)
			}
		})
	}
}

// orderObj records, per source location, the order in which handler payloads
// arrived.
type orderObj struct {
	mu    sync.Mutex
	bySrc map[int][]int
}

func (o *orderObj) record(src, v int) {
	o.mu.Lock()
	if o.bySrc == nil {
		o.bySrc = make(map[int][]int)
	}
	o.bySrc[src] = append(o.bySrc[src], v)
	o.mu.Unlock()
}

// TestChaosTransportFIFOExactlyOnce asserts the runtime-visible guarantee
// under fault injection: per (source, destination) pair, asynchronous RMIs
// execute in invocation order, each exactly once — while the wire stats
// prove that frames really were dropped and retransmitted underneath.
func TestChaosTransportFIFOExactlyOnce(t *testing.T) {
	const k = 300
	cfg := DefaultConfig()
	cfg.Transport = ChaosTransport(transport.DefaultChaosConfig())
	m := NewMachine(4, cfg)
	objs := make([]*orderObj, 4)
	m.Execute(func(loc *Location) {
		obj := &orderObj{}
		objs[loc.ID()] = obj
		h := loc.RegisterObject(obj)
		loc.Barrier()
		src := loc.ID()
		for d := 0; d < loc.NumLocations(); d++ {
			if d == src {
				continue
			}
			for i := 0; i < k; i++ {
				i := i
				loc.AsyncRMI(d, h, func(o any, _ *Location) { o.(*orderObj).record(src, i) })
			}
		}
		loc.Fence()
	})
	for dst, obj := range objs {
		for src := 0; src < 4; src++ {
			if src == dst {
				continue
			}
			got := obj.bySrc[src]
			if len(got) != k {
				t.Fatalf("pair %d->%d executed %d RMIs, want exactly %d", src, dst, len(got), k)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("pair %d->%d position %d executed payload %d (FIFO violated)", src, dst, i, v)
				}
			}
		}
	}
	ws := m.WireStats()
	if ws.Dropped == 0 || ws.Retransmits == 0 || ws.DuplicatesDropped == 0 {
		t.Fatalf("chaos injected no faults worth recovering from: %+v", ws)
	}
}

// TestWireStatsExposedAfterExecute pins the post-run inspection surface:
// name and counters of the last run remain readable once Execute returns
// and the transport itself is gone.
func TestWireStatsExposedAfterExecute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = TCPLoopbackTransport
	m := NewMachine(2, cfg)
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		loc.AsyncRMI(1-loc.ID(), h, func(o any, _ *Location) { o.(*counterObj).add(1) })
		loc.Fence()
	})
	if name := m.TransportName(); name != "reliable+tcp" {
		t.Fatalf("TransportName = %q after Execute", name)
	}
	ws := m.WireStats()
	if ws.FramesSent == 0 || ws.BytesSent == 0 || ws.Connections == 0 {
		t.Fatalf("no retained wire counters: %+v", ws)
	}
}

// TestTransportFromEnv pins the PCF_TRANSPORT resolution table, including
// the fail-fast posture for typos.
func TestTransportFromEnv(t *testing.T) {
	wantNames := map[string]string{
		"":          "inproc",
		"inproc":    "inproc",
		"wire":      "reliable+wire-inproc",
		"tcp":       "reliable+tcp",
		"chaos":     "reliable+chaos+wire-inproc",
		"chaos-tcp": "reliable+chaos+tcp",
	}
	for env, want := range wantNames {
		t.Run(fmt.Sprintf("env=%q", env), func(t *testing.T) {
			t.Setenv("PCF_TRANSPORT", env)
			m := NewMachine(2, Config{Aggregation: 1})
			tr := TransportFromEnv()(m)
			defer tr.Close()
			if tr.Name() != want {
				t.Fatalf("PCF_TRANSPORT=%q built %q, want %q", env, tr.Name(), want)
			}
		})
	}
	t.Run("unknown name panics", func(t *testing.T) {
		t.Setenv("PCF_TRANSPORT", "carrier-pigeon")
		defer func() {
			if recover() == nil {
				t.Fatal("unknown transport name must panic, not fall back")
			}
		}()
		TransportFromEnv()
	})
	t.Run("bad chaos seed panics", func(t *testing.T) {
		t.Setenv("PCF_TRANSPORT", "chaos")
		t.Setenv("PCF_CHAOS_SEED", "not-a-number")
		defer func() {
			if recover() == nil {
				t.Fatal("unparsable PCF_CHAOS_SEED must panic")
			}
		}()
		TransportFromEnv()
	})
	t.Run("chaos seed accepted", func(t *testing.T) {
		t.Setenv("PCF_TRANSPORT", "chaos")
		t.Setenv("PCF_CHAOS_SEED", "42")
		m := NewMachine(2, Config{Aggregation: 1})
		tr := TransportFromEnv()(m)
		defer tr.Close()
		if tr.Name() != "reliable+chaos+wire-inproc" {
			t.Fatalf("seeded chaos built %q", tr.Name())
		}
	})
}
