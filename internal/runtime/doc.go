// Package runtime implements the STAPL run-time system (RTS) substrate used
// by the Parallel Container Framework: locations, the ARMI communication
// layer (asynchronous, synchronous and split-phase remote method
// invocations), futures, global quiescence (rmi_fence), collective
// operations, message aggregation and a small task executor.
//
// The paper's RTS runs on MPI/pthreads across physical nodes.  Here the
// parallel machine is simulated inside one Go process: a Machine owns P
// locations, each location runs the SPMD application function in its own
// goroutine and serves incoming RMIs in a dedicated server goroutine.  All
// cross-location interaction must go through RMIs; containers built on top
// of this package never touch another location's state directly, which
// preserves the semantics (shared-object view, local/remote asymmetry,
// completion-ordering guarantees) that the paper's evaluation depends on.
package runtime
