package runtime

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// rmiRequest is one remote method invocation in flight.  Exactly one of fn /
// argFn (asynchronous, no result) or retFn / retArgFn (synchronous via resp,
// split-phase via fut) is set.  The arg-carrying pair exists so hot paths can
// ship a static handler plus an explicit argument instead of allocating a
// capturing closure per request (see AsyncRMIArg).
type rmiRequest struct {
	src      int
	handle   Handle
	kind     uint8 // transport.Kind* — the RMI flavour, for the wire descriptor
	fn       func(obj any, loc *Location)
	argFn    func(obj any, loc *Location, arg any)
	retFn    func(obj any, loc *Location) any
	retArgFn func(obj any, loc *Location, arg any) any
	arg      any
	resp     chan any
	fut      *Future // split-phase: completed (and the reply accounted) by the server
	delay    time.Duration
	bytes    int
	// op identifies the registered operation behind argFn (0 for closure
	// requests).  A request with op != 0 is self-decoding: a wire transport
	// encodes arg with the registry codec instead of rendezvousing with
	// sender-side state.  token addresses the origin's completion callback
	// for KindReply requests.
	op    OpID
	token uint64
}

// requestOverheadBytes is the simulated size of a request descriptor (the
// header every remote invocation would marshal even with an empty argument
// list).  Synchronous, split-phase and urgent requests account it so that
// sync-heavy experiments no longer report zero traffic.
const requestOverheadBytes = 8

// AsyncRMI executes fn against the representative of handle h on location
// dest without waiting for completion.  Requests from this location to a
// given destination are delivered and executed in invocation order.  If dest
// is this location the handler runs immediately (the local fast path the
// paper's containers exploit).
func (l *Location) AsyncRMI(dest int, h Handle, fn func(obj any, loc *Location)) {
	l.AsyncRMISized(dest, h, 0, fn)
}

// AsyncRMISized is AsyncRMI with an explicit simulated payload size in
// bytes.  Remote requests additionally account the fixed request-descriptor
// overhead; local invocations move no simulated bytes at all.
func (l *Location) AsyncRMISized(dest int, h Handle, bytes int, fn func(obj any, loc *Location)) {
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindAsync, fn: fn, bytes: bytes, delay: l.delayTo(dest)}
	l.enqueue(dest, req)
}

// AsyncRMIArg is the allocation-lean flavour of AsyncRMISized: fn must be a
// static (non-capturing) handler and receives arg explicitly at the
// destination.  Because nothing is captured, the caller pays no closure
// allocation per request — the framework's bulk and element paths use it so
// steady-state traffic runs without per-op garbage (the request descriptor
// itself is pooled).  arg crosses locations by reference: like every RMI
// argument it must not be mutated until the handler has run.
func (l *Location) AsyncRMIArg(dest int, h Handle, bytes int, fn func(obj any, loc *Location, arg any), arg any) {
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l, arg)
		return
	}
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindAsync, argFn: fn, arg: arg, bytes: bytes, delay: l.delayTo(dest)}
	l.enqueue(dest, req)
}

// AsyncRMIOpSized is AsyncRMIArg for a REGISTERED operation: op names the
// registry entry whose static handler will run at the destination, and the
// request is self-decoding on wire transports (the argument crosses as codec
// bytes, never as a shared pointer).  Counter behaviour is identical to
// AsyncRMIArg — an inproc run and a wire run report the same Stats.
func (l *Location) AsyncRMIOpSized(dest int, h Handle, bytes int, op OpID, arg any) {
	e := opByID(op)
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		e.exec(l.object(h), l, arg)
		return
	}
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindAsync, argFn: e.exec, arg: arg, op: op, bytes: bytes, delay: l.delayTo(dest)}
	l.enqueue(dest, req)
}

// AsyncRMIUrgentOp is AsyncRMIUrgent for a registered operation (see
// AsyncRMIOpSized).  The PCF's directory forwarding hops use it so a
// forwarded element operation stays self-decoding across every hop.
func (l *Location) AsyncRMIUrgentOp(dest int, h Handle, op OpID, arg any) {
	e := opByID(op)
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		e.exec(l.object(h), l, arg)
		return
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindUrgent, argFn: e.exec, arg: arg, op: op, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AsyncRMIBulkOp is AsyncRMIBulkArg for a registered operation (see
// AsyncRMIOpSized): one self-decoding request carries a whole element group.
func (l *Location) AsyncRMIBulkOp(dest int, h Handle, ops, bytes int, op OpID, arg any) {
	e := opByID(op)
	l.stats.bulkRMIs.Add(1)
	l.stats.bulkOps.Add(int64(ops))
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		e.exec(l.object(h), l, arg)
		return
	}
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindBulk, argFn: e.exec, arg: arg, op: op, bytes: bytes, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// ReplyOp sends the result of a value-returning registered operation back to
// the request's origin, addressed by the completion token the request
// carried.  op names the operation whose retCodec marshals v on the wire.
// The reply moves NO machine counters here: the handler that computed v
// accounts the reply traffic itself with AccountReply, exactly like the
// shared-memory completion path, so Stats stay transport-independent.
func (l *Location) ReplyOp(dest int, h Handle, op OpID, token uint64, v any) {
	if dest == l.id {
		l.completeToken(token, v)
		return
	}
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindReply, arg: v, op: op, token: token, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AsyncRMIUrgent behaves like AsyncRMI but bypasses the aggregation buffer:
// earlier buffered requests to the destination are flushed first (preserving
// per-destination FIFO order) and this request is delivered immediately.
// The PCF uses it for requests whose results a caller may be blocked on
// (forwarded split-phase and synchronous invocations), where holding the
// request back for batching would stall the caller.
func (l *Location) AsyncRMIUrgent(dest int, h Handle, fn func(obj any, loc *Location)) {
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindUrgent, fn: fn, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AsyncRMIBulk ships ops logical element operations to dest as ONE request
// and one physical message: fn runs once at the destination and is expected
// to apply the whole batch.  bytes is the simulated marshalled size of the
// batched arguments.  Like a synchronous request it flushes the per-element
// aggregation buffer for dest first, so bulk and per-element traffic on the
// same (source, destination) pair stay in invocation order.
//
// This is the semantic-batching primitive behind the containers' bulk
// element methods (SetBulk/GetBulk/...): where per-element traffic pays one
// request descriptor per element and relies on the aggregation buffer to
// amortise messages, a bulk request pays one descriptor for the whole group.
func (l *Location) AsyncRMIBulk(dest int, h Handle, ops, bytes int, fn func(obj any, loc *Location)) {
	l.stats.bulkRMIs.Add(1)
	l.stats.bulkOps.Add(int64(ops))
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	// One request descriptor amortised over the whole group — the byte-level
	// half of the bulk win (the per-element path pays one per element).
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindBulk, fn: fn, bytes: bytes, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AsyncRMIBulkArg is AsyncRMIBulk with a static handler and an explicit
// argument: the per-destination flush of a bulk operation ships its group
// without allocating a capturing closure (the group itself travels in arg,
// typically a pooled descriptor the handler recycles after applying it).
func (l *Location) AsyncRMIBulkArg(dest int, h Handle, ops, bytes int, fn func(obj any, loc *Location, arg any), arg any) {
	l.stats.bulkRMIs.Add(1)
	l.stats.bulkOps.Add(int64(ops))
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l, arg)
		return
	}
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindBulk, argFn: fn, arg: arg, bytes: bytes, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AccountDirectoryRMI attributes n of this location's recently issued RMIs to
// directory maintenance (ownership publication, cache fills, epoch bumps), so
// machine statistics can separate the metadata traffic a distributed
// directory generates from the element traffic it serves.  The RMIs
// themselves are ordinary Async/Bulk requests and stay counted in
// RMIsSent/MessagesSent; this is an additional category, like BulkOps.
func (l *Location) AccountDirectoryRMI(n int) {
	l.stats.directoryRMIs.Add(int64(n))
}

// AccountReply records one response message of the given simulated payload
// size.  Framework code that answers a request out-of-band (bulk gathers,
// split-phase completions routed through shared memory) uses it so the
// machine statistics still see the traffic a real interconnect would carry.
func (l *Location) AccountReply(bytes int) {
	l.stats.messagesSent.Add(1)
	l.stats.bytesSimulated.Add(int64(bytes))
}

// SyncRMI executes fn against the representative of handle h on location
// dest and blocks until the result is available.  Synchronous RMIs issued by
// RMI handlers themselves must not target a location whose handler is
// blocked on this location (the framework's own handlers never block; they
// forward asynchronously instead).
func (l *Location) SyncRMI(dest int, h Handle, fn func(obj any, loc *Location) any) any {
	l.stats.syncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		return fn(l.object(h), l)
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindSync, retFn: fn, delay: l.delayTo(dest)}
	return l.syncCall(dest, req)
}

// SyncRMIArg is SyncRMI with a static handler and an explicit argument: the
// blocking round trip runs without a capturing closure on the request side.
func (l *Location) SyncRMIArg(dest int, h Handle, fn func(obj any, loc *Location, arg any) any, arg any) any {
	l.stats.syncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		return fn(l.object(h), l, arg)
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindSync, retArgFn: fn, arg: arg, delay: l.delayTo(dest)}
	return l.syncCall(dest, req)
}

// respPool recycles the one-slot response channels of synchronous RMIs.  A
// channel is returned to the pool only after its response was received, so a
// recycled channel is always empty; the abort path deliberately leaks its
// channel because a dying handler may still complete the send.
var respPool = sync.Pool{New: func() any { return make(chan any, 1) }}

// syncCall delivers a prepared synchronous request to dest and blocks for
// the response.  The destination's aggregation buffer is flushed first so a
// synchronous request cannot overtake earlier asynchronous requests on the
// same (source, destination) pair.
func (l *Location) syncCall(dest int, req *rmiRequest) any {
	resp := respPool.Get().(chan any)
	req.resp = resp
	l.flushDest(dest)
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
	var out any
	select {
	case out = <-resp:
	case <-l.machine.abortCh:
		// The handler that would have answered died with the machine;
		// unwind instead of blocking forever.  Prefer a response that
		// raced the abort.
		select {
		case out = <-resp:
		default:
			panic(abortSignal{})
		}
	}
	respPool.Put(resp)
	// The response itself is one message on the simulated interconnect,
	// carrying the marshalled result.
	l.AccountReply(l.payloadBytes(out))
	return out
}

// SplitRMI starts a split-phase invocation of fn on location dest and
// immediately returns a Future holding the eventual result (the paper's
// pc_future).  The calling goroutine may keep working and retrieve the value
// later with Future.Get.
func (l *Location) SplitRMI(dest int, h Handle, fn func(obj any, loc *Location) any) *Future {
	l.stats.splitRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	fut := NewFuture()
	if dest == l.id {
		l.localRMIs.Add(1)
		fut.Complete(fn(l.object(h), l))
		return fut
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindSplit, retFn: fn, fut: fut, delay: l.delayTo(dest)}
	// If the caller blocks on the future before the aggregation buffer
	// holding this request fills up, Get flushes the buffer (identified by
	// these fields — no closure) so the request is delivered and the caller
	// makes progress.
	fut.onWaitLoc = l
	fut.onWaitDest = dest
	// A machine abort means the completion may never arrive; let Get
	// unwind instead of deadlocking.
	fut.abort = l.machine.abortCh
	l.enqueue(dest, req)
	return fut
}

// SplitRMIArg is SplitRMI with a static handler and an explicit argument:
// the split-phase issue allocates only the Future.
func (l *Location) SplitRMIArg(dest int, h Handle, fn func(obj any, loc *Location, arg any) any, arg any) *Future {
	l.stats.splitRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	fut := NewFuture()
	if dest == l.id {
		l.localRMIs.Add(1)
		fut.Complete(fn(l.object(h), l, arg))
		return fut
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindSplit, retArgFn: fn, arg: arg, fut: fut, delay: l.delayTo(dest)}
	fut.onWaitLoc = l
	fut.onWaitDest = dest
	fut.abort = l.machine.abortCh
	l.enqueue(dest, req)
	return fut
}

// delayTo returns the configured artificial latency between this location
// and dest, or zero.
func (l *Location) delayTo(dest int) time.Duration {
	if l.cfg.RemoteDelay == nil {
		return 0
	}
	return l.cfg.RemoteDelay(l.id, dest)
}

// batchPool recycles the aggregation-buffer slices: a buffer is swapped out
// when it flushes, copied into the destination mailbox, and returned here.
var batchPool = sync.Pool{New: func() any { return make([]*rmiRequest, 0, 64) }}

// getBatch returns an empty request slice from the pool.
func getBatch() []*rmiRequest { return batchPool.Get().([]*rmiRequest)[:0] }

// putBatch clears and recycles a flushed batch slice.
func putBatch(b []*rmiRequest) {
	for i := range b {
		b[i] = nil
	}
	//lint:ignore SA6002 the slice header itself is what we pool; the
	// backing array is reused, so the boxed header allocation is amortised.
	batchPool.Put(b[:0])
}

// DefaultAggregationMax bounds the adaptive aggregation target when
// Config.AggregationMax is zero.
const DefaultAggregationMax = 64

// aggEWMAAlpha is the smoothing factor of the per-destination occupancy
// EWMA: high enough that a destination going quiet collapses its target
// within a dozen trickle flushes, low enough that one odd flush does not
// whipsaw the batch size.
const aggEWMAAlpha = 0.25

// resetAggregation reseeds every destination's adaptive target from the
// configured Aggregation factor.  Called at construction and at the start of
// each run, so targets learned by one Execute do not leak into the next
// (runs must stay deterministic in isolation).
func (l *Location) resetAggregation() {
	l.aggMu.Lock()
	seed := l.cfg.Aggregation
	if seed > l.cfg.AggregationMax {
		seed = l.cfg.AggregationMax
	}
	for d := range l.aggTarget {
		l.aggTarget[d] = seed
		l.aggEWMA[d] = float64(seed)
	}
	l.aggMu.Unlock()
}

// AggregationTarget reports the current flush threshold for dest: the fixed
// Aggregation factor, or the adaptively learned per-destination target when
// AdaptiveAggregation is on (exposed for tests and introspection).
func (l *Location) AggregationTarget(dest int) int {
	if !l.cfg.AdaptiveAggregation {
		return l.cfg.Aggregation
	}
	l.aggMu.Lock()
	defer l.aggMu.Unlock()
	return l.aggTarget[dest]
}

// observeFlushLocked folds one flush of dest's buffer into its occupancy
// EWMA and re-derives the integer target.  threshold marks a flush that
// happened because the buffer reached its target (sustained traffic): the
// sample is doubled so the target probes upward toward AggregationMax.  An
// explicit flush (fence, sync, bulk, future wait) samples the raw occupancy,
// so a destination that keeps flushing nearly empty decays toward 1 and
// trickle traffic stops waiting on a batch that will never fill.
// Caller holds aggMu.
func (l *Location) observeFlushLocked(dest, occ int, threshold bool) {
	sample := float64(occ)
	if threshold {
		sample *= 2
	}
	if max := float64(l.cfg.AggregationMax); sample > max {
		sample = max
	}
	l.aggEWMA[dest] += (sample - l.aggEWMA[dest]) * aggEWMAAlpha
	t := int(l.aggEWMA[dest] + 0.5)
	if t < 1 {
		t = 1
	}
	if t > l.cfg.AggregationMax {
		t = l.cfg.AggregationMax
	}
	l.aggTarget[dest] = t
}

// enqueue places an asynchronous request in the aggregation buffer for dest,
// flushing the buffer as a single batch when it reaches the aggregation
// threshold (the fixed factor, or the destination's adaptive target).
func (l *Location) enqueue(dest int, req *rmiRequest) {
	l.machine.addPending(l.id, 1)
	adaptive := l.cfg.AdaptiveAggregation
	if !adaptive && l.cfg.Aggregation <= 1 {
		l.stats.messagesSent.Add(1)
		l.machine.transport.DeliverOne(l.id, dest, req)
		return
	}
	l.aggMu.Lock()
	if l.aggBufs[dest] == nil {
		l.aggBufs[dest] = getBatch()
	}
	l.aggBufs[dest] = append(l.aggBufs[dest], req)
	target := l.cfg.Aggregation
	if adaptive {
		target = l.aggTarget[dest]
	}
	var batch []*rmiRequest
	if len(l.aggBufs[dest]) >= target {
		batch = l.aggBufs[dest]
		l.aggBufs[dest] = nil
		if adaptive {
			l.observeFlushLocked(dest, len(batch), true)
		}
	}
	l.aggMu.Unlock()
	if batch != nil {
		l.stats.messagesSent.Add(1)
		l.machine.transport.Deliver(l.id, dest, batch)
		putBatch(batch)
	}
}

// flushDest delivers any buffered asynchronous requests destined to dest.
func (l *Location) flushDest(dest int) {
	l.flushDestObserve(dest, false)
}

// flushDestObserve is flushDest with control over idle observation.  An
// explicit flush that finds the buffer EMPTY is the trickle signal — the
// destination's traffic is not filling batches between synchronisation
// points — so fences feed it to the controller as a floor sample of 1,
// letting the target decay all the way back (a threshold flush at target 1
// probes upward with a doubled sample, so without idle observations the
// target could never settle at 1).  Only the deterministic fence-level
// flushAll passes observeIdle: flushDest is also reached from a blocked
// Future.Get, whose flush depends on completion timing, and an idle
// observation there would make message boundaries — and therefore the
// machine counters — racy.
func (l *Location) flushDestObserve(dest int, observeIdle bool) {
	adaptive := l.cfg.AdaptiveAggregation
	if !adaptive && l.cfg.Aggregation <= 1 {
		return
	}
	l.aggMu.Lock()
	batch := l.aggBufs[dest]
	l.aggBufs[dest] = nil
	if adaptive {
		if len(batch) > 0 {
			l.observeFlushLocked(dest, len(batch), false)
		} else if observeIdle {
			l.observeFlushLocked(dest, 1, false)
		}
	}
	l.aggMu.Unlock()
	if len(batch) > 0 {
		l.stats.messagesSent.Add(1)
		l.machine.transport.Deliver(l.id, dest, batch)
	}
	if batch != nil {
		putBatch(batch)
	}
}

// flushAll delivers every buffered asynchronous request.  It is called on
// entry to Fence and when the SPMD function returns.
func (l *Location) flushAll() {
	if !l.cfg.AdaptiveAggregation && l.cfg.Aggregation <= 1 {
		return
	}
	for d := 0; d < l.n; d++ {
		l.flushDestObserve(d, true)
	}
}

// SyncRMIT is a typed convenience wrapper around Location.SyncRMI.
func SyncRMIT[T any](l *Location, dest int, h Handle, fn func(obj any, loc *Location) T) T {
	v := l.SyncRMI(dest, h, func(obj any, loc *Location) any { return fn(obj, loc) })
	return v.(T)
}

// SplitRMIT is a typed convenience wrapper around Location.SplitRMI.
func SplitRMIT[T any](l *Location, dest int, h Handle, fn func(obj any, loc *Location) T) *FutureOf[T] {
	return &FutureOf[T]{f: l.SplitRMI(dest, h, func(obj any, loc *Location) any { return fn(obj, loc) })}
}
