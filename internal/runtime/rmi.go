package runtime

import "time"

// rmiRequest is one remote method invocation in flight.  Exactly one of fn
// (asynchronous, no result) or retFn+resp (synchronous / split-phase) is set.
type rmiRequest struct {
	src    int
	handle Handle
	fn     func(obj any, loc *Location)
	retFn  func(obj any, loc *Location) any
	resp   chan any
	delay  time.Duration
	bytes  int
}

// Sizer is implemented by argument payloads that want their (simulated)
// marshalled size accounted in the machine statistics.  It mirrors the
// paper's define_type marshalling hooks: we do not serialise bytes over a
// wire, but we do track how many bytes would have moved.
type Sizer interface {
	ByteSize() int
}

// PayloadBytes returns the simulated marshalled size of v: its ByteSize if
// it implements Sizer, otherwise a flat default per value.
func PayloadBytes(v any) int {
	if s, ok := v.(Sizer); ok {
		return s.ByteSize()
	}
	return 8
}

// AsyncRMI executes fn against the representative of handle h on location
// dest without waiting for completion.  Requests from this location to a
// given destination are delivered and executed in invocation order.  If dest
// is this location the handler runs immediately (the local fast path the
// paper's containers exploit).
func (l *Location) AsyncRMI(dest int, h Handle, fn func(obj any, loc *Location)) {
	l.AsyncRMISized(dest, h, 0, fn)
}

// AsyncRMISized is AsyncRMI with an explicit simulated payload size in bytes.
func (l *Location) AsyncRMISized(dest int, h Handle, bytes int, fn func(obj any, loc *Location)) {
	l.machine.stats.AsyncRMIs.Add(1)
	l.machine.stats.RMIsSent.Add(1)
	l.machine.stats.BytesSimulated.Add(int64(bytes))
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	l.remoteRMIs.Add(1)
	req := &rmiRequest{src: l.id, handle: h, fn: fn, bytes: bytes, delay: l.delayTo(dest)}
	l.enqueue(dest, req)
}

// AsyncRMIUrgent behaves like AsyncRMI but bypasses the aggregation buffer:
// earlier buffered requests to the destination are flushed first (preserving
// per-destination FIFO order) and this request is delivered immediately.
// The PCF uses it for requests whose results a caller may be blocked on
// (forwarded split-phase and synchronous invocations), where holding the
// request back for batching would stall the caller.
func (l *Location) AsyncRMIUrgent(dest int, h Handle, fn func(obj any, loc *Location)) {
	l.machine.stats.AsyncRMIs.Add(1)
	l.machine.stats.RMIsSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := &rmiRequest{src: l.id, handle: h, fn: fn, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.machine.stats.MessagesSent.Add(1)
	l.machine.locations[dest].inbox.push(req)
}

// SyncRMI executes fn against the representative of handle h on location
// dest and blocks until the result is available.  Synchronous RMIs issued by
// RMI handlers themselves must not target a location whose handler is
// blocked on this location (the framework's own handlers never block; they
// forward asynchronously instead).
func (l *Location) SyncRMI(dest int, h Handle, fn func(obj any, loc *Location) any) any {
	l.machine.stats.SyncRMIs.Add(1)
	l.machine.stats.RMIsSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		return fn(l.object(h), l)
	}
	l.remoteRMIs.Add(1)
	resp := make(chan any, 1)
	req := &rmiRequest{src: l.id, handle: h, retFn: fn, resp: resp, delay: l.delayTo(dest)}
	// A synchronous request must not overtake earlier asynchronous
	// requests to the same destination, so the aggregation buffer for
	// that destination is flushed first.
	l.flushDest(dest)
	l.machine.addPending(l.id, 1)
	l.machine.stats.MessagesSent.Add(1)
	l.machine.locations[dest].inbox.push(req)
	out := <-resp
	// The response itself is one message on the simulated interconnect.
	l.machine.stats.MessagesSent.Add(1)
	return out
}

// SplitRMI starts a split-phase invocation of fn on location dest and
// immediately returns a Future holding the eventual result (the paper's
// pc_future).  The calling goroutine may keep working and retrieve the value
// later with Future.Get.
func (l *Location) SplitRMI(dest int, h Handle, fn func(obj any, loc *Location) any) *Future {
	l.machine.stats.SplitRMIs.Add(1)
	l.machine.stats.RMIsSent.Add(1)
	fut := NewFuture()
	if dest == l.id {
		l.localRMIs.Add(1)
		fut.Complete(fn(l.object(h), l))
		return fut
	}
	l.remoteRMIs.Add(1)
	req := &rmiRequest{src: l.id, handle: h, delay: l.delayTo(dest)}
	req.fn = func(obj any, loc *Location) {
		fut.Complete(fn(obj, loc))
		loc.machine.stats.MessagesSent.Add(1) // response message
	}
	// If the caller blocks on the future before the aggregation buffer
	// holding this request fills up, flush the buffer so the request is
	// delivered and the caller makes progress.
	fut.onWait = func() { l.flushDest(dest) }
	l.enqueue(dest, req)
	return fut
}

// delayTo returns the configured artificial latency between this location
// and dest, or zero.
func (l *Location) delayTo(dest int) time.Duration {
	if l.cfg.RemoteDelay == nil {
		return 0
	}
	return l.cfg.RemoteDelay(l.id, dest)
}

// enqueue places an asynchronous request in the aggregation buffer for dest,
// flushing the buffer as a single batch when it reaches the configured
// aggregation factor.
func (l *Location) enqueue(dest int, req *rmiRequest) {
	l.machine.addPending(l.id, 1)
	if l.cfg.Aggregation <= 1 {
		l.machine.stats.MessagesSent.Add(1)
		l.machine.locations[dest].inbox.push(req)
		return
	}
	l.aggMu.Lock()
	l.aggBufs[dest] = append(l.aggBufs[dest], req)
	var batch []*rmiRequest
	if len(l.aggBufs[dest]) >= l.cfg.Aggregation {
		batch = l.aggBufs[dest]
		l.aggBufs[dest] = nil
	}
	l.aggMu.Unlock()
	if batch != nil {
		l.machine.stats.MessagesSent.Add(1)
		l.machine.locations[dest].inbox.pushAll(batch)
	}
}

// flushDest delivers any buffered asynchronous requests destined to dest.
func (l *Location) flushDest(dest int) {
	if l.cfg.Aggregation <= 1 {
		return
	}
	l.aggMu.Lock()
	batch := l.aggBufs[dest]
	l.aggBufs[dest] = nil
	l.aggMu.Unlock()
	if len(batch) > 0 {
		l.machine.stats.MessagesSent.Add(1)
		l.machine.locations[dest].inbox.pushAll(batch)
	}
}

// flushAll delivers every buffered asynchronous request.  It is called on
// entry to Fence and when the SPMD function returns.
func (l *Location) flushAll() {
	if l.cfg.Aggregation <= 1 {
		return
	}
	for d := 0; d < l.n; d++ {
		l.flushDest(d)
	}
}

// SyncRMIT is a typed convenience wrapper around Location.SyncRMI.
func SyncRMIT[T any](l *Location, dest int, h Handle, fn func(obj any, loc *Location) T) T {
	v := l.SyncRMI(dest, h, func(obj any, loc *Location) any { return fn(obj, loc) })
	return v.(T)
}

// SplitRMIT is a typed convenience wrapper around Location.SplitRMI.
func SplitRMIT[T any](l *Location, dest int, h Handle, fn func(obj any, loc *Location) T) *FutureOf[T] {
	return &FutureOf[T]{f: l.SplitRMI(dest, h, func(obj any, loc *Location) any { return fn(obj, loc) })}
}
