package runtime

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// rmiRequest is one remote method invocation in flight.  Exactly one of fn
// (asynchronous, no result) or retFn+resp (synchronous / split-phase) is set.
type rmiRequest struct {
	src    int
	handle Handle
	kind   uint8 // transport.Kind* — the RMI flavour, for the wire descriptor
	fn     func(obj any, loc *Location)
	retFn  func(obj any, loc *Location) any
	resp   chan any
	delay  time.Duration
	bytes  int
}

// Sizer is implemented by argument payloads that want their (simulated)
// marshalled size accounted in the machine statistics.  It mirrors the
// paper's define_type marshalling hooks: we do not serialise bytes over a
// wire, but we do track how many bytes would have moved.
type Sizer interface {
	ByteSize() int
}

// PayloadBytes returns the simulated marshalled size of v: its ByteSize if
// it implements Sizer, otherwise a flat default per value.
func PayloadBytes(v any) int {
	if s, ok := v.(Sizer); ok {
		return s.ByteSize()
	}
	return 8
}

// requestOverheadBytes is the simulated size of a request descriptor (the
// header every remote invocation would marshal even with an empty argument
// list).  Synchronous, split-phase and urgent requests account it so that
// sync-heavy experiments no longer report zero traffic.
const requestOverheadBytes = 8

// AsyncRMI executes fn against the representative of handle h on location
// dest without waiting for completion.  Requests from this location to a
// given destination are delivered and executed in invocation order.  If dest
// is this location the handler runs immediately (the local fast path the
// paper's containers exploit).
func (l *Location) AsyncRMI(dest int, h Handle, fn func(obj any, loc *Location)) {
	l.AsyncRMISized(dest, h, 0, fn)
}

// AsyncRMISized is AsyncRMI with an explicit simulated payload size in
// bytes.  Remote requests additionally account the fixed request-descriptor
// overhead; local invocations move no simulated bytes at all.
func (l *Location) AsyncRMISized(dest int, h Handle, bytes int, fn func(obj any, loc *Location)) {
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindAsync, fn: fn, bytes: bytes, delay: l.delayTo(dest)}
	l.enqueue(dest, req)
}

// AsyncRMIUrgent behaves like AsyncRMI but bypasses the aggregation buffer:
// earlier buffered requests to the destination are flushed first (preserving
// per-destination FIFO order) and this request is delivered immediately.
// The PCF uses it for requests whose results a caller may be blocked on
// (forwarded split-phase and synchronous invocations), where holding the
// request back for batching would stall the caller.
func (l *Location) AsyncRMIUrgent(dest int, h Handle, fn func(obj any, loc *Location)) {
	l.stats.asyncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindUrgent, fn: fn, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AsyncRMIBulk ships ops logical element operations to dest as ONE request
// and one physical message: fn runs once at the destination and is expected
// to apply the whole batch.  bytes is the simulated marshalled size of the
// batched arguments.  Like a synchronous request it flushes the per-element
// aggregation buffer for dest first, so bulk and per-element traffic on the
// same (source, destination) pair stay in invocation order.
//
// This is the semantic-batching primitive behind the containers' bulk
// element methods (SetBulk/GetBulk/...): where per-element traffic pays one
// request descriptor per element and relies on the aggregation buffer to
// amortise messages, a bulk request pays one descriptor for the whole group.
func (l *Location) AsyncRMIBulk(dest int, h Handle, ops, bytes int, fn func(obj any, loc *Location)) {
	l.stats.bulkRMIs.Add(1)
	l.stats.bulkOps.Add(int64(ops))
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		fn(l.object(h), l)
		return
	}
	// One request descriptor amortised over the whole group — the byte-level
	// half of the bulk win (the per-element path pays one per element).
	l.stats.bytesSimulated.Add(int64(bytes) + requestOverheadBytes)
	l.remoteRMIs.Add(1)
	l.flushDest(dest)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindBulk, fn: fn, bytes: bytes, delay: l.delayTo(dest)}
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
}

// AccountDirectoryRMI attributes n of this location's recently issued RMIs to
// directory maintenance (ownership publication, cache fills, epoch bumps), so
// machine statistics can separate the metadata traffic a distributed
// directory generates from the element traffic it serves.  The RMIs
// themselves are ordinary Async/Bulk requests and stay counted in
// RMIsSent/MessagesSent; this is an additional category, like BulkOps.
func (l *Location) AccountDirectoryRMI(n int) {
	l.stats.directoryRMIs.Add(int64(n))
}

// AccountReply records one response message of the given simulated payload
// size.  Framework code that answers a request out-of-band (bulk gathers,
// split-phase completions routed through shared memory) uses it so the
// machine statistics still see the traffic a real interconnect would carry.
func (l *Location) AccountReply(bytes int) {
	l.stats.messagesSent.Add(1)
	l.stats.bytesSimulated.Add(int64(bytes))
}

// SyncRMI executes fn against the representative of handle h on location
// dest and blocks until the result is available.  Synchronous RMIs issued by
// RMI handlers themselves must not target a location whose handler is
// blocked on this location (the framework's own handlers never block; they
// forward asynchronously instead).
func (l *Location) SyncRMI(dest int, h Handle, fn func(obj any, loc *Location) any) any {
	l.stats.syncRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	if dest == l.id {
		l.localRMIs.Add(1)
		return fn(l.object(h), l)
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	resp := make(chan any, 1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindSync, retFn: fn, resp: resp, delay: l.delayTo(dest)}
	// A synchronous request must not overtake earlier asynchronous
	// requests to the same destination, so the aggregation buffer for
	// that destination is flushed first.
	l.flushDest(dest)
	l.machine.addPending(l.id, 1)
	l.stats.messagesSent.Add(1)
	l.machine.transport.DeliverOne(l.id, dest, req)
	var out any
	select {
	case out = <-resp:
	case <-l.machine.abortCh:
		// The handler that would have answered died with the machine;
		// unwind instead of blocking forever.  Prefer a response that
		// raced the abort.
		select {
		case out = <-resp:
		default:
			panic(abortSignal{})
		}
	}
	// The response itself is one message on the simulated interconnect,
	// carrying the marshalled result.
	l.AccountReply(PayloadBytes(out))
	return out
}

// SplitRMI starts a split-phase invocation of fn on location dest and
// immediately returns a Future holding the eventual result (the paper's
// pc_future).  The calling goroutine may keep working and retrieve the value
// later with Future.Get.
func (l *Location) SplitRMI(dest int, h Handle, fn func(obj any, loc *Location) any) *Future {
	l.stats.splitRMIs.Add(1)
	l.stats.rmisSent.Add(1)
	fut := NewFuture()
	if dest == l.id {
		l.localRMIs.Add(1)
		fut.Complete(fn(l.object(h), l))
		return fut
	}
	l.stats.bytesSimulated.Add(requestOverheadBytes)
	l.remoteRMIs.Add(1)
	req := getRequest()
	*req = rmiRequest{src: l.id, handle: h, kind: transport.KindSplit, delay: l.delayTo(dest)}
	req.fn = func(obj any, loc *Location) {
		out := fn(obj, loc)
		fut.Complete(out)
		loc.AccountReply(PayloadBytes(out)) // response message
	}
	// If the caller blocks on the future before the aggregation buffer
	// holding this request fills up, flush the buffer so the request is
	// delivered and the caller makes progress.
	fut.onWait = func() { l.flushDest(dest) }
	// A machine abort means the completion may never arrive; let Get
	// unwind instead of deadlocking.
	fut.abort = l.machine.abortCh
	l.enqueue(dest, req)
	return fut
}

// delayTo returns the configured artificial latency between this location
// and dest, or zero.
func (l *Location) delayTo(dest int) time.Duration {
	if l.cfg.RemoteDelay == nil {
		return 0
	}
	return l.cfg.RemoteDelay(l.id, dest)
}

// batchPool recycles the aggregation-buffer slices: a buffer is swapped out
// when it flushes, copied into the destination mailbox, and returned here.
var batchPool = sync.Pool{New: func() any { return make([]*rmiRequest, 0, 64) }}

// getBatch returns an empty request slice from the pool.
func getBatch() []*rmiRequest { return batchPool.Get().([]*rmiRequest)[:0] }

// putBatch clears and recycles a flushed batch slice.
func putBatch(b []*rmiRequest) {
	for i := range b {
		b[i] = nil
	}
	//lint:ignore SA6002 the slice header itself is what we pool; the
	// backing array is reused, so the boxed header allocation is amortised.
	batchPool.Put(b[:0])
}

// enqueue places an asynchronous request in the aggregation buffer for dest,
// flushing the buffer as a single batch when it reaches the configured
// aggregation factor.
func (l *Location) enqueue(dest int, req *rmiRequest) {
	l.machine.addPending(l.id, 1)
	if l.cfg.Aggregation <= 1 {
		l.stats.messagesSent.Add(1)
		l.machine.transport.DeliverOne(l.id, dest, req)
		return
	}
	l.aggMu.Lock()
	if l.aggBufs[dest] == nil {
		l.aggBufs[dest] = getBatch()
	}
	l.aggBufs[dest] = append(l.aggBufs[dest], req)
	var batch []*rmiRequest
	if len(l.aggBufs[dest]) >= l.cfg.Aggregation {
		batch = l.aggBufs[dest]
		l.aggBufs[dest] = nil
	}
	l.aggMu.Unlock()
	if batch != nil {
		l.stats.messagesSent.Add(1)
		l.machine.transport.Deliver(l.id, dest, batch)
		putBatch(batch)
	}
}

// flushDest delivers any buffered asynchronous requests destined to dest.
func (l *Location) flushDest(dest int) {
	if l.cfg.Aggregation <= 1 {
		return
	}
	l.aggMu.Lock()
	batch := l.aggBufs[dest]
	l.aggBufs[dest] = nil
	l.aggMu.Unlock()
	if len(batch) > 0 {
		l.stats.messagesSent.Add(1)
		l.machine.transport.Deliver(l.id, dest, batch)
	}
	if batch != nil {
		putBatch(batch)
	}
}

// flushAll delivers every buffered asynchronous request.  It is called on
// entry to Fence and when the SPMD function returns.
func (l *Location) flushAll() {
	if l.cfg.Aggregation <= 1 {
		return
	}
	for d := 0; d < l.n; d++ {
		l.flushDest(d)
	}
}

// SyncRMIT is a typed convenience wrapper around Location.SyncRMI.
func SyncRMIT[T any](l *Location, dest int, h Handle, fn func(obj any, loc *Location) T) T {
	v := l.SyncRMI(dest, h, func(obj any, loc *Location) any { return fn(obj, loc) })
	return v.(T)
}

// SplitRMIT is a typed convenience wrapper around Location.SplitRMI.
func SplitRMIT[T any](l *Location, dest int, h Handle, fn func(obj any, loc *Location) T) *FutureOf[T] {
	return &FutureOf[T]{f: l.SplitRMI(dest, h, func(obj any, loc *Location) any { return fn(obj, loc) })}
}
