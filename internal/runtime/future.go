package runtime

import "sync"

// Future is the handle returned by split-phase RMIs (the paper's pc_future).
// Get blocks until the remote method has executed and its result is
// available.  A Future is completed exactly once and may be read any number
// of times from any goroutine.
type Future struct {
	mu    sync.Mutex
	cond  *sync.Cond
	done  bool
	value any
	// onWait, when set, is invoked once by the first caller that has to
	// block in Get.  The RTS uses it to flush the aggregation buffer
	// holding the split-phase request, guaranteeing progress even when
	// fewer requests than the aggregation factor were issued.
	onWait func()
}

// NewFuture returns an incomplete future.
func NewFuture() *Future {
	f := &Future{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Complete stores the result and wakes all waiters.  Completing an already
// complete future panics: the RTS guarantees each split-phase invocation
// produces exactly one acknowledgement.
func (f *Future) Complete(v any) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		panic("runtime: Future completed twice")
	}
	f.value = v
	f.done = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Get blocks until the result is available and returns it.
func (f *Future) Get() any {
	f.mu.Lock()
	if !f.done && f.onWait != nil {
		nudge := f.onWait
		f.onWait = nil
		f.mu.Unlock()
		nudge()
		f.mu.Lock()
	}
	for !f.done {
		f.cond.Wait()
	}
	v := f.value
	f.mu.Unlock()
	return v
}

// TryGet returns (value, true) if the result is already available, without
// blocking, and (zero, false) otherwise.
func (f *Future) TryGet() (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		return nil, false
	}
	return f.value, true
}

// Done reports whether the result is available.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// FutureOf is a typed wrapper around Future produced by SplitRMIT.
type FutureOf[T any] struct {
	f *Future
}

// NewFutureOf wraps an untyped future.
func NewFutureOf[T any](f *Future) *FutureOf[T] { return &FutureOf[T]{f: f} }

// CompletedFuture returns an already-resolved typed future holding v.
func CompletedFuture[T any](v T) *FutureOf[T] {
	f := NewFuture()
	f.Complete(v)
	return &FutureOf[T]{f: f}
}

// Get blocks until the value is available.
func (f *FutureOf[T]) Get() T { return f.f.Get().(T) }

// TryGet returns the value without blocking if it is available.
func (f *FutureOf[T]) TryGet() (T, bool) {
	v, ok := f.f.TryGet()
	if !ok {
		var zero T
		return zero, false
	}
	return v.(T), true
}

// Done reports whether the value is available.
func (f *FutureOf[T]) Done() bool { return f.f.Done() }

// Untyped exposes the underlying untyped future.
func (f *FutureOf[T]) Untyped() *Future { return f.f }
