package runtime

import "sync"

// Future is the handle returned by split-phase RMIs (the paper's pc_future).
// Get blocks until the remote method has executed and its result is
// available.  A Future is completed exactly once and may be read any number
// of times from any goroutine.
//
// Completion is signalled through a channel (not a condition variable) so
// that a waiter can simultaneously watch the owning machine's abort channel:
// when the machine aborts — the handler that would have completed the future
// died with it — Get unwinds the waiter instead of blocking forever.
type Future struct {
	mu        sync.Mutex
	done      chan struct{} // allocated lazily by the first blocking Get
	completed bool
	value     any
	// onWaitLoc/onWaitDest, when set, identify the aggregation buffer
	// holding the split-phase request.  The first caller that has to block
	// in Get flushes it, guaranteeing progress even when fewer requests
	// than the aggregation factor were issued.  Fields instead of a closure
	// so issuing a split-phase RMI allocates no capture.
	onWaitLoc  *Location
	onWaitDest int
	// abort, when set (split-phase RMIs), is the owning machine's abort
	// channel; a nil channel never fires, so plain futures block exactly
	// as before.
	abort <-chan struct{}
}

// NewFuture returns an incomplete future.  The completion channel is
// allocated only if a caller actually blocks in Get: split-phase traffic
// whose results are harvested after completion (the common fence-then-read
// pattern, or TryGet polling) never pays for a channel.
func NewFuture() *Future {
	return &Future{}
}

// Complete stores the result and wakes all waiters.  Completing an already
// complete future panics: the RTS guarantees each split-phase invocation
// produces exactly one acknowledgement.
func (f *Future) Complete(v any) {
	f.mu.Lock()
	if f.completed {
		f.mu.Unlock()
		panic("runtime: Future completed twice")
	}
	f.value = v
	f.completed = true
	if f.done != nil {
		close(f.done)
	}
	f.mu.Unlock()
}

// Get blocks until the result is available and returns it.  If the owning
// machine aborts first, Get unwinds the calling goroutine (the completion
// will never arrive).
func (f *Future) Get() any {
	f.mu.Lock()
	if f.completed {
		v := f.value
		f.mu.Unlock()
		return v
	}
	if f.onWaitLoc != nil {
		loc, dest := f.onWaitLoc, f.onWaitDest
		f.onWaitLoc = nil
		f.mu.Unlock()
		loc.flushDest(dest)
		f.mu.Lock()
		if f.completed {
			v := f.value
			f.mu.Unlock()
			return v
		}
	}
	if f.done == nil {
		f.done = make(chan struct{})
	}
	done := f.done
	abort := f.abort
	f.mu.Unlock()
	select {
	case <-done:
	case <-abort:
		// Re-check: completion may have raced the abort.
		select {
		case <-done:
		default:
			panic(abortSignal{})
		}
	}
	// The close of done happens after value is written, so this read is
	// ordered.
	return f.value
}

// TryGet returns (value, true) if the result is already available, without
// blocking, and (zero, false) otherwise.
func (f *Future) TryGet() (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.completed {
		return nil, false
	}
	return f.value, true
}

// Done reports whether the result is available.
func (f *Future) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.completed
}

// FutureOf is a typed wrapper around Future produced by SplitRMIT.
type FutureOf[T any] struct {
	f *Future
}

// NewFutureOf wraps an untyped future.
func NewFutureOf[T any](f *Future) *FutureOf[T] { return &FutureOf[T]{f: f} }

// CompletedFuture returns an already-resolved typed future holding v.
func CompletedFuture[T any](v T) *FutureOf[T] {
	f := NewFuture()
	f.Complete(v)
	return &FutureOf[T]{f: f}
}

// Get blocks until the value is available.
func (f *FutureOf[T]) Get() T { return f.f.Get().(T) }

// TryGet returns the value without blocking if it is available.
func (f *FutureOf[T]) TryGet() (T, bool) {
	v, ok := f.f.TryGet()
	if !ok {
		var zero T
		return zero, false
	}
	return v.(T), true
}

// Done reports whether the value is available.
func (f *FutureOf[T]) Done() bool { return f.f.Done() }

// Untyped exposes the underlying untyped future.
func (f *FutureOf[T]) Untyped() *Future { return f.f }
