package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Handle identifies a distributed p_object: every location holding a
// representative of the same shared object registers it and obtains the same
// handle, which is then used to address the object's peers in RMIs.
type Handle int32

// InvalidHandle is the zero value that no registered object ever receives.
const InvalidHandle Handle = -1

// Config controls machine-wide behaviour of the simulated RTS.
type Config struct {
	// Aggregation is the number of asynchronous RMIs buffered per
	// destination before the buffer is flushed as a single batch
	// (the paper's message-aggregation optimisation).  A value <= 1
	// disables aggregation.
	Aggregation int

	// RemoteDelay, when non-nil, returns an artificial latency injected
	// before delivering a request from src to dst.  It is used to model
	// machine topology (e.g. intra-node vs. inter-node placement in the
	// Fig. 41 experiment).  A nil function means no added delay.
	RemoteDelay func(src, dst int) time.Duration

	// Seed seeds each location's private random number generator
	// deterministically (location id is mixed in).
	Seed int64

	// Transport builds the interconnect used for remote requests.  Nil
	// selects the transport named by the PCF_TRANSPORT environment variable
	// (in-process delivery when that is unset).  The factory runs at the
	// start of every Execute and the transport is drained and closed at the
	// end, so wire resources only live while SPMD code runs.
	Transport TransportFactory
}

// DefaultConfig returns the configuration used when none is supplied:
// aggregation of 16 requests, no artificial latency.
func DefaultConfig() Config {
	return Config{Aggregation: 16, Seed: 1}
}

// Machine simulates a parallel machine composed of a fixed number of
// locations.  It owns the interconnect (mailboxes), the collective-operation
// scratch space and the global quiescence counters used by Fence.
type Machine struct {
	cfg       Config
	locations []*Location

	// pending counts RMIs that have been sent (or buffered) but whose
	// handlers have not yet completed.  Fence waits for it to reach zero.
	// pendingBySrc tracks the same per issuing location, for the
	// one-sided fence.
	pending      atomic.Int64
	pendingBySrc []atomic.Int64
	quiesceMu    sync.Mutex
	quiesceCv    *sync.Cond

	// barrier state (central, sense-reversing).
	barMu    sync.Mutex
	barCv    *sync.Cond
	barCount int
	barPhase int

	// collective scratch: one slot per location, plus a broadcast slot.
	collectMu   sync.Mutex
	collectVals []any

	// transport is the interconnect for the Execute run in progress; it is
	// built from transportFactory when Execute starts and torn down when it
	// ends.  lastWire* retain the final wire identity and traffic counters
	// of the most recent run for post-Execute inspection.
	transportFactory TransportFactory
	transport        Transport
	lastWireName     string
	lastWireStats    transport.WireStats
}

// Stats is a folded snapshot of the machine-wide communication statistics.
// The live counters are sharded per location (see statShard) so that the
// element-access hot path never touches a machine-global cache line;
// Machine.Stats sums the shards on demand.
type Stats struct {
	RMIsSent       int64 // RMI requests issued (a bulk request counts once)
	MessagesSent   int64 // physical messages (batches) delivered
	RMIsHandled    int64 // handlers executed
	SyncRMIs       int64
	AsyncRMIs      int64
	SplitRMIs      int64
	BulkRMIs       int64 // bulk requests issued
	BulkOps        int64 // element operations carried by bulk requests
	DirectoryRMIs  int64 // RMIs carrying directory maintenance (publish, fill, epoch)
	Fences         int64
	BytesSimulated int64
}

// statShard holds one location's contribution to the machine statistics.
// The counters stay atomic — a location's SPMD goroutine and its RMI server
// both write them — but they are private to the location, so updates from
// different locations never contend on the same cache line the way the old
// machine-global atomics did.  The shard is padded to a cache line to keep
// neighbouring locations' shards from false sharing.
type statShard struct {
	rmisSent       atomic.Int64
	messagesSent   atomic.Int64
	rmisHandled    atomic.Int64
	syncRMIs       atomic.Int64
	asyncRMIs      atomic.Int64
	splitRMIs      atomic.Int64
	bulkRMIs       atomic.Int64
	bulkOps        atomic.Int64
	directoryRMIs  atomic.Int64
	fences         atomic.Int64
	bytesSimulated atomic.Int64
	_              [40]byte // pad to a multiple of 64 bytes
}

// NewMachine creates a machine with p locations and the given configuration.
func NewMachine(p int, cfg Config) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("runtime: machine needs at least one location, got %d", p))
	}
	if cfg.Aggregation <= 0 {
		cfg.Aggregation = 1
	}
	m := &Machine{cfg: cfg}
	m.transportFactory = cfg.Transport
	if m.transportFactory == nil {
		m.transportFactory = TransportFromEnv()
	}
	m.quiesceCv = sync.NewCond(&m.quiesceMu)
	m.barCv = sync.NewCond(&m.barMu)
	m.collectVals = make([]any, p)
	m.pendingBySrc = make([]atomic.Int64, p)
	m.locations = make([]*Location, p)
	for i := 0; i < p; i++ {
		m.locations[i] = newLocation(m, i, p, cfg)
	}
	return m
}

// NumLocations reports the number of locations in the machine.
func (m *Machine) NumLocations() int { return len(m.locations) }

// Location returns the location with the given id (for inspection in tests).
func (m *Machine) Location(id int) *Location { return m.locations[id] }

// Stats folds the per-location statistic shards into one machine-wide
// snapshot.  It may be called while the machine is running; each counter is
// read atomically, but the snapshot as a whole is not a consistent cut.
func (m *Machine) Stats() Stats {
	var s Stats
	for _, l := range m.locations {
		s.RMIsSent += l.stats.rmisSent.Load()
		s.MessagesSent += l.stats.messagesSent.Load()
		s.RMIsHandled += l.stats.rmisHandled.Load()
		s.SyncRMIs += l.stats.syncRMIs.Load()
		s.AsyncRMIs += l.stats.asyncRMIs.Load()
		s.SplitRMIs += l.stats.splitRMIs.Load()
		s.BulkRMIs += l.stats.bulkRMIs.Load()
		s.BulkOps += l.stats.bulkOps.Load()
		s.DirectoryRMIs += l.stats.directoryRMIs.Load()
		s.Fences += l.stats.fences.Load()
		s.BytesSimulated += l.stats.bytesSimulated.Load()
	}
	return s
}

// TransportName reports the transport of the most recent Execute run (the
// transport of the run in progress, while one is running).
func (m *Machine) TransportName() string {
	if t := m.transport; t != nil {
		return t.Name()
	}
	return m.lastWireName
}

// WireStats reports the wire-level traffic counters of the most recent
// Execute run.  In-process transports report all zeros; wire transports
// report frames, bytes, protocol and fault-injection counters.  Unlike
// Stats, these counters are transport-DEPENDENT by design — they describe
// the wire, not the workload.
func (m *Machine) WireStats() transport.WireStats {
	if t := m.transport; t != nil {
		return t.WireStats()
	}
	return m.lastWireStats
}

// Execute runs fn in SPMD fashion: one goroutine per location, each passed
// its own Location.  Incoming RMIs are served concurrently by per-location
// server goroutines.  Execute returns when every SPMD goroutine has returned
// and all outstanding RMIs have been handled.
func (m *Machine) Execute(fn func(loc *Location)) {
	var wg sync.WaitGroup
	// Bring up the interconnect for this run.  It is built per Execute so
	// wire transports only hold sockets and goroutines while SPMD code runs.
	m.transport = m.transportFactory(m)
	// Start RMI servers.
	for _, l := range m.locations {
		l.startServer()
	}
	wg.Add(len(m.locations))
	for _, l := range m.locations {
		go func(l *Location) {
			defer wg.Done()
			fn(l)
			// Flush any aggregation buffers left by the SPMD code so
			// trailing asynchronous requests are delivered.
			l.flushAll()
		}(l)
	}
	wg.Wait()
	// Drain outstanding traffic before stopping the servers.
	m.waitQuiescent()
	// Every handler ran (pending hit zero), but the wire may still owe
	// acknowledgements or delayed duplicates; wait those out, then retain
	// the wire's identity and counters for post-run inspection.
	m.transport.Drain()
	m.lastWireName = m.transport.Name()
	m.lastWireStats = m.transport.WireStats()
	for _, l := range m.locations {
		l.stopServer()
	}
	for _, l := range m.locations {
		l.serverWG.Wait()
	}
	m.transport.Close()
	m.transport = nil
}

// ExecuteOn is a convenience wrapper that builds a machine with p locations
// and the default configuration, runs fn SPMD-style, and returns the machine
// (for stats inspection).
func ExecuteOn(p int, fn func(loc *Location)) *Machine {
	m := NewMachine(p, DefaultConfig())
	m.Execute(fn)
	return m
}

func (m *Machine) addPending(src int, n int64) {
	m.pending.Add(n)
	m.pendingBySrc[src].Add(n)
}

func (m *Machine) donePending(src int) {
	globalZero := m.pending.Add(-1) == 0
	srcZero := m.pendingBySrc[src].Add(-1) == 0
	if globalZero || srcZero {
		m.quiesceMu.Lock()
		m.quiesceCv.Broadcast()
		m.quiesceMu.Unlock()
	}
}

// waitQuiescent blocks until no RMIs are outstanding.  It must only be
// called while no SPMD goroutine can issue new top-level requests (i.e.
// inside a barrier or after all SPMD functions returned); handler-generated
// requests are accounted for because a handler only decrements pending after
// any requests it issued were already counted.
//
// Handler-issued asynchronous requests may be sitting in aggregation
// buffers with no one left to fill them up to the flush threshold, so the
// wait repeatedly flushes every location's buffers until the machine drains
// (this is the fence's role of delivering all pending traffic).
func (m *Machine) waitQuiescent() {
	for m.pending.Load() != 0 {
		for _, l := range m.locations {
			l.flushAll()
		}
		if m.pending.Load() == 0 {
			return
		}
		waitABit()
	}
}

// waitSrcQuiescent blocks until no RMI issued by location src is
// outstanding.  Requests that handlers spawned on other locations while
// servicing src's traffic are attributed to the forwarding location, which
// matches the paper's os_fence semantics (the caller's own requests have
// been delivered and executed).
func (m *Machine) waitSrcQuiescent(src int) {
	m.quiesceMu.Lock()
	for m.pendingBySrc[src].Load() != 0 {
		m.quiesceCv.Wait()
	}
	m.quiesceMu.Unlock()
}

// barrier blocks until all locations have reached it.  It is reusable.
func (m *Machine) barrier() {
	m.barMu.Lock()
	phase := m.barPhase
	m.barCount++
	if m.barCount == len(m.locations) {
		m.barCount = 0
		m.barPhase++
		m.barCv.Broadcast()
		m.barMu.Unlock()
		return
	}
	for phase == m.barPhase {
		m.barCv.Wait()
	}
	m.barMu.Unlock()
}

// Location is the RTS abstraction of a processing element: a unit with a
// private address space and execution capability.  All state reachable from
// a Location (registered p_object representatives, container base
// containers, ...) belongs to that location; other locations may only act on
// it through RMIs addressed to this location.
type Location struct {
	machine *Machine
	id      int
	n       int
	cfg     Config

	inbox    *mailbox
	serverWG sync.WaitGroup

	// Aggregation buffers, one per destination.
	aggMu   sync.Mutex
	aggBufs [][]*rmiRequest

	// Registered p_object representatives, held as an immutable snapshot
	// slice indexed by handle.  Registration is rare and collective
	// (SPMD-ordered, so the running counter yields identical handles on
	// every location) and copies the table under regMu; lookup happens on
	// every RMI and is a single atomic load plus a slice index — no lock.
	regMu      sync.Mutex
	objects    atomic.Pointer[[]any]
	nextHandle Handle

	// rng is a private, deterministic random source for workloads.
	rng *rand.Rand

	// stats is this location's shard of the machine statistics.
	stats statShard

	// localStats counts per-location activity.
	localRMIs  atomic.Int64
	remoteRMIs atomic.Int64
}

func newLocation(m *Machine, id, n int, cfg Config) *Location {
	l := &Location{
		machine: m,
		id:      id,
		n:       n,
		cfg:     cfg,
		inbox:   newMailbox(),
		aggBufs: make([][]*rmiRequest, n),
		rng:     rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id))),
	}
	empty := make([]any, 0)
	l.objects.Store(&empty)
	return l
}

// ID returns this location's identifier in [0, NumLocations()).
func (l *Location) ID() int { return l.id }

// NumLocations returns the number of locations in the machine.
func (l *Location) NumLocations() int { return l.n }

// Machine returns the machine this location belongs to.
func (l *Location) Machine() *Machine { return l.machine }

// Rand returns the location-private deterministic random source.
func (l *Location) Rand() *rand.Rand { return l.rng }

// LocalRMIs reports how many RMIs this location executed locally
// (shortcut path, no message) since the machine was created.
func (l *Location) LocalRMIs() int64 { return l.localRMIs.Load() }

// RemoteRMIs reports how many RMIs this location sent to other locations.
func (l *Location) RemoteRMIs() int64 { return l.remoteRMIs.Load() }

// RegisterObject registers a p_object representative with the RTS and
// returns its handle.  Registration must be performed collectively in the
// same order on every location (the usual SPMD constructor discipline), so
// that corresponding representatives share a handle.
func (l *Location) RegisterObject(obj any) Handle {
	l.regMu.Lock()
	h := l.nextHandle
	l.nextHandle++
	old := *l.objects.Load()
	next := make([]any, int(h)+1)
	copy(next, old)
	next[h] = obj
	l.objects.Store(&next)
	l.regMu.Unlock()
	return h
}

// UnregisterObject removes a previously registered representative.
func (l *Location) UnregisterObject(h Handle) {
	l.regMu.Lock()
	old := *l.objects.Load()
	if int(h) < len(old) && old[h] != nil {
		next := append([]any(nil), old...)
		next[h] = nil
		l.objects.Store(&next)
	}
	l.regMu.Unlock()
}

// Object returns the representative registered under h on this location.
// Framework code running inside an RMI handler uses it to reach sibling
// p_objects (e.g. the outer container of an embedded base) at the
// destination.  It panics if no object is registered under h.
func (l *Location) Object(h Handle) any { return l.object(h) }

// object looks up a registered representative in the current table
// snapshot.  This is the per-RMI fast path: one atomic load, no lock.
func (l *Location) object(h Handle) any {
	tbl := *l.objects.Load()
	if h >= 0 && int(h) < len(tbl) {
		if o := tbl[h]; o != nil {
			return o
		}
	}
	panic(fmt.Sprintf("runtime: location %d has no object registered for handle %d", l.id, h))
}

// startServer launches the goroutine that executes incoming RMIs for this
// location.  Handlers are executed one at a time, which provides the
// paper's per-location serialisation of incoming requests and the FIFO
// ordering guarantee for a given (source, destination) pair.  The server
// drains the mailbox in whole batches (one lock acquisition per batch) and
// returns executed requests to the request pool.
func (l *Location) startServer() {
	l.serverWG.Add(1)
	go func() {
		defer l.serverWG.Done()
		var spare []*rmiRequest
		for {
			batch := l.inbox.popBatch(spare)
			if batch == nil {
				return
			}
			for i, req := range batch {
				l.execute(req)
				putRequest(req)
				batch[i] = nil
			}
			spare = batch
		}
	}()
}

func (l *Location) stopServer() { l.inbox.close() }

// execute runs one RMI request against the local representative.
func (l *Location) execute(req *rmiRequest) {
	defer l.machine.donePending(req.src)
	if req.delay > 0 {
		time.Sleep(req.delay)
	}
	l.stats.rmisHandled.Add(1)
	obj := l.object(req.handle)
	if req.resp != nil {
		req.resp <- req.retFn(obj, l)
	} else {
		req.fn(obj, l)
	}
}

// reqPool recycles rmiRequest descriptors: the element-access hot path
// allocates one per remote request, and the server returns it after the
// handler ran, so steady-state traffic runs without per-request garbage.
var reqPool = sync.Pool{New: func() any { return new(rmiRequest) }}

// getRequest returns a zeroed request descriptor from the pool.
func getRequest() *rmiRequest { return reqPool.Get().(*rmiRequest) }

// putRequest clears and recycles a request descriptor.  Callers must not
// retain any reference to it afterwards.
func putRequest(r *rmiRequest) {
	*r = rmiRequest{}
	reqPool.Put(r)
}
