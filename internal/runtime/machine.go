package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Handle identifies a distributed p_object: every location holding a
// representative of the same shared object registers it and obtains the same
// handle, which is then used to address the object's peers in RMIs.
type Handle int32

// InvalidHandle is the zero value that no registered object ever receives.
const InvalidHandle Handle = -1

// Config controls machine-wide behaviour of the simulated RTS.
type Config struct {
	// Aggregation is the number of asynchronous RMIs buffered per
	// destination before the buffer is flushed as a single batch
	// (the paper's message-aggregation optimisation).  A value <= 1
	// disables aggregation.
	Aggregation int

	// AdaptiveAggregation replaces the fixed Aggregation threshold with a
	// per-destination target sized from observed flush occupancy: an EWMA of
	// how full each destination's buffer is when it flushes, probing upward
	// under sustained traffic and collapsing back toward 1 when a
	// destination goes quiet (so trickle traffic is not held hostage to a
	// large batch).  Aggregation still seeds the initial target; the target
	// is clamped to [1, AggregationMax].  Off by default: the adaptive
	// threshold changes message counts, so the deterministic counter
	// baselines keep the fixed policy.
	AdaptiveAggregation bool

	// AggregationMax bounds the adaptive aggregation target so FIFO flush
	// latency stays predictable.  Zero means DefaultAggregationMax.  It has
	// no effect when AdaptiveAggregation is false.
	AggregationMax int

	// RemoteDelay, when non-nil, returns an artificial latency injected
	// before delivering a request from src to dst.  It is used to model
	// machine topology (e.g. intra-node vs. inter-node placement in the
	// Fig. 41 experiment).  A nil function means no added delay.
	RemoteDelay func(src, dst int) time.Duration

	// Seed seeds each location's private random number generator
	// deterministically (location id is mixed in).
	Seed int64

	// Transport builds the interconnect used for remote requests.  Nil
	// selects the transport named by the PCF_TRANSPORT environment variable
	// (in-process delivery when that is unset).  The factory runs at the
	// start of every Execute and the transport is drained and closed at the
	// end, so wire resources only live while SPMD code runs.
	Transport TransportFactory

	// StallTimeout arms the progress watchdog: when requests are pending
	// but no machine counter moves for this long, the run aborts with a
	// FaultStall diagnosing the frozen counters.  Zero consults the
	// PCF_STALL_TIMEOUT environment variable (disabled when unset);
	// negative disables the watchdog outright.
	StallTimeout time.Duration

	// FaultInjection, when non-nil, deterministically injects one fault
	// into every Execute run (see SeededFaultInjection).  Nil consults the
	// PCF_CHAOS_PANIC / PCF_CHAOS_STALL environment variables.
	FaultInjection *FaultInjection
}

// DefaultConfig returns the configuration used when none is supplied:
// aggregation of 16 requests, no artificial latency.
func DefaultConfig() Config {
	return Config{Aggregation: 16, Seed: 1}
}

// Machine simulates a parallel machine composed of a fixed number of
// locations.  It owns the interconnect (mailboxes), the collective-operation
// scratch space and the global quiescence counters used by Fence.
type Machine struct {
	cfg       Config
	locations []*Location

	// pending counts RMIs that have been sent (or buffered) but whose
	// handlers have not yet completed.  Fence waits for it to reach zero.
	// pendingBySrc tracks the same per issuing location, for the
	// one-sided fence.
	pending      atomic.Int64
	pendingBySrc []atomic.Int64
	quiesceMu    sync.Mutex
	quiesceCv    *sync.Cond

	// barrier state (central, sense-reversing).
	barMu    sync.Mutex
	barCv    *sync.Cond
	barCount int
	barPhase int

	// collective scratch: one slot per location, plus a broadcast slot.
	collectMu   sync.Mutex
	collectVals []any

	// transport is the interconnect for the Execute run in progress; it is
	// built from transportFactory when Execute starts and torn down when it
	// ends.  lastWire* retain the final wire identity and traffic counters
	// of the most recent run for post-Execute inspection.
	transportFactory TransportFactory
	transport        Transport
	lastWireName     string
	lastWireStats    transport.WireStats

	// Fault-containment state, reset at the start of every run.  abortCh
	// closes when the machine aborts; every blocking primitive selects on
	// it (or re-checks aborted() from its condition-variable wait loop).
	abortCh      chan struct{}
	abortOnce    *sync.Once
	faultMu      sync.Mutex
	faults       []*LocationFault
	status       []LocationStatus
	watchdogStop chan struct{}
	watchdogDone chan struct{}
	stallTimeout time.Duration

	// Multi-process state.  proc is non-nil when this machine runs as one
	// rank of a launched job (see proc.go): the SPMD body executes only for
	// locations[proc.rank], collectives run over the launcher's control
	// plane, and onFault forwards locally raised faults to the hub.
	// foldedStats/foldedWire hold the job-wide sums gathered at the end of a
	// clean proc-mode run, so Stats() reports machine-wide totals exactly as
	// an in-process run would.
	proc        *procRuntime
	onFault     func(*LocationFault) // guarded by faultMu
	foldedStats *Stats
	foldedWire  *transport.WireStats
}

// Stats is a folded snapshot of the machine-wide communication statistics.
// The live counters are sharded per location (see statShard) so that the
// element-access hot path never touches a machine-global cache line;
// Machine.Stats sums the shards on demand.
type Stats struct {
	RMIsSent       int64 // RMI requests issued (a bulk request counts once)
	MessagesSent   int64 // physical messages (batches) delivered
	RMIsHandled    int64 // handlers executed
	SyncRMIs       int64
	AsyncRMIs      int64
	SplitRMIs      int64
	BulkRMIs       int64 // bulk requests issued
	BulkOps        int64 // element operations carried by bulk requests
	DirectoryRMIs  int64 // RMIs carrying directory maintenance (publish, fill, epoch)
	Fences         int64
	BytesSimulated int64
	SizerMisses    int64 // payload sizes guessed because no sizer tier matched
}

// Add returns the field-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	s.RMIsSent += o.RMIsSent
	s.MessagesSent += o.MessagesSent
	s.RMIsHandled += o.RMIsHandled
	s.SyncRMIs += o.SyncRMIs
	s.AsyncRMIs += o.AsyncRMIs
	s.SplitRMIs += o.SplitRMIs
	s.BulkRMIs += o.BulkRMIs
	s.BulkOps += o.BulkOps
	s.DirectoryRMIs += o.DirectoryRMIs
	s.Fences += o.Fences
	s.BytesSimulated += o.BytesSimulated
	s.SizerMisses += o.SizerMisses
	return s
}

// Sub returns the field-wise difference s − o (the delta between two
// snapshots of the same counters).
func (s Stats) Sub(o Stats) Stats {
	s.RMIsSent -= o.RMIsSent
	s.MessagesSent -= o.MessagesSent
	s.RMIsHandled -= o.RMIsHandled
	s.SyncRMIs -= o.SyncRMIs
	s.AsyncRMIs -= o.AsyncRMIs
	s.SplitRMIs -= o.SplitRMIs
	s.BulkRMIs -= o.BulkRMIs
	s.BulkOps -= o.BulkOps
	s.DirectoryRMIs -= o.DirectoryRMIs
	s.Fences -= o.Fences
	s.BytesSimulated -= o.BytesSimulated
	s.SizerMisses -= o.SizerMisses
	return s
}

// statShard holds one location's contribution to the machine statistics.
// The counters stay atomic — a location's SPMD goroutine and its RMI server
// both write them — but they are private to the location, so updates from
// different locations never contend on the same cache line the way the old
// machine-global atomics did.  The shard is padded to a cache line to keep
// neighbouring locations' shards from false sharing.
type statShard struct {
	rmisSent       atomic.Int64
	messagesSent   atomic.Int64
	rmisHandled    atomic.Int64
	syncRMIs       atomic.Int64
	asyncRMIs      atomic.Int64
	splitRMIs      atomic.Int64
	bulkRMIs       atomic.Int64
	bulkOps        atomic.Int64
	directoryRMIs  atomic.Int64
	fences         atomic.Int64
	bytesSimulated atomic.Int64
	sizerMisses    atomic.Int64
	_              [32]byte // pad to a multiple of 64 bytes
}

// NewMachine creates a machine with p locations and the given configuration.
func NewMachine(p int, cfg Config) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("runtime: machine needs at least one location, got %d", p))
	}
	if cfg.Aggregation <= 0 {
		cfg.Aggregation = 1
	}
	if cfg.AggregationMax <= 0 {
		cfg.AggregationMax = DefaultAggregationMax
	}
	if cfg.Aggregation > cfg.AggregationMax {
		cfg.AggregationMax = cfg.Aggregation
	}
	if cfg.FaultInjection == nil {
		cfg.FaultInjection = faultInjectionFromEnv(p)
	}
	m := &Machine{cfg: cfg}
	m.transportFactory = cfg.Transport
	if m.transportFactory == nil {
		m.transportFactory = TransportFromEnv()
	}
	switch {
	case cfg.StallTimeout > 0:
		m.stallTimeout = cfg.StallTimeout
	case cfg.StallTimeout == 0:
		m.stallTimeout = stallTimeoutFromEnv()
	}
	if m.stallTimeout <= 0 && cfg.FaultInjection != nil && cfg.FaultInjection.Kind == FaultStall {
		// A stall injection with no watchdog would deadlock by construction:
		// only the watchdog's abort releases the injected stall.
		m.stallTimeout = defaultInjectedStallTimeout
	}
	m.quiesceCv = sync.NewCond(&m.quiesceMu)
	m.barCv = sync.NewCond(&m.barMu)
	m.collectVals = make([]any, p)
	m.pendingBySrc = make([]atomic.Int64, p)
	m.locations = make([]*Location, p)
	for i := 0; i < p; i++ {
		m.locations[i] = newLocation(m, i, p, cfg)
	}
	if isProcFactory(m.transportFactory) {
		rt, err := procConnect()
		if err != nil {
			panic(fmt.Sprintf("runtime: proc transport requires a launched child: %v", err))
		}
		if p != rt.n {
			panic(fmt.Sprintf("runtime: proc machine needs one location per process: %d locations, %d processes", p, rt.n))
		}
		m.proc = rt
	}
	return m
}

// NumLocations reports the number of locations in the machine.
func (m *Machine) NumLocations() int { return len(m.locations) }

// Location returns the location with the given id (for inspection in tests).
func (m *Machine) Location(id int) *Location { return m.locations[id] }

// Stats folds the per-location statistic shards into one machine-wide
// snapshot.  It may be called while the machine is running; each counter is
// read atomically, but the snapshot as a whole is not a consistent cut.
func (m *Machine) Stats() Stats {
	if m.foldedStats != nil {
		return *m.foldedStats
	}
	return m.foldShards()
}

// foldShards sums this process's per-location statistic shards.
func (m *Machine) foldShards() Stats {
	var s Stats
	for _, l := range m.locations {
		s.RMIsSent += l.stats.rmisSent.Load()
		s.MessagesSent += l.stats.messagesSent.Load()
		s.RMIsHandled += l.stats.rmisHandled.Load()
		s.SyncRMIs += l.stats.syncRMIs.Load()
		s.AsyncRMIs += l.stats.asyncRMIs.Load()
		s.SplitRMIs += l.stats.splitRMIs.Load()
		s.BulkRMIs += l.stats.bulkRMIs.Load()
		s.BulkOps += l.stats.bulkOps.Load()
		s.DirectoryRMIs += l.stats.directoryRMIs.Load()
		s.Fences += l.stats.fences.Load()
		s.BytesSimulated += l.stats.bytesSimulated.Load()
		s.SizerMisses += l.stats.sizerMisses.Load()
	}
	return s
}

// Stats reports this location's own share of the machine statistics — the
// counters attributed to requests this location issued and handlers it ran.
// Unlike Machine.Stats, the share is meaningful mid-run on EVERY transport,
// including multi-process (where a mid-run machine-wide fold would need a
// collective): SPMD code that wants a machine-wide mid-run delta snapshots
// per-location shares and sums them with a collective of its own (see
// bench.measuredRun).
func (l *Location) Stats() Stats {
	return Stats{
		RMIsSent:       l.stats.rmisSent.Load(),
		MessagesSent:   l.stats.messagesSent.Load(),
		RMIsHandled:    l.stats.rmisHandled.Load(),
		SyncRMIs:       l.stats.syncRMIs.Load(),
		AsyncRMIs:      l.stats.asyncRMIs.Load(),
		SplitRMIs:      l.stats.splitRMIs.Load(),
		BulkRMIs:       l.stats.bulkRMIs.Load(),
		BulkOps:        l.stats.bulkOps.Load(),
		DirectoryRMIs:  l.stats.directoryRMIs.Load(),
		Fences:         l.stats.fences.Load(),
		BytesSimulated: l.stats.bytesSimulated.Load(),
		SizerMisses:    l.stats.sizerMisses.Load(),
	}
}

// TransportName reports the transport of the most recent Execute run (the
// transport of the run in progress, while one is running).
func (m *Machine) TransportName() string {
	if t := m.transport; t != nil {
		return t.Name()
	}
	return m.lastWireName
}

// WireStats reports the wire-level traffic counters of the most recent
// Execute run.  In-process transports report all zeros; wire transports
// report frames, bytes, protocol and fault-injection counters.  Unlike
// Stats, these counters are transport-DEPENDENT by design — they describe
// the wire, not the workload.
func (m *Machine) WireStats() transport.WireStats {
	if m.foldedWire != nil {
		return *m.foldedWire
	}
	if t := m.transport; t != nil {
		return t.WireStats()
	}
	return m.lastWireStats
}

// Drain budgets: a clean run gives the wire the full reliable-protocol
// window to collect its acknowledgements; an aborted run bounds the drain so
// a dead peer cannot hold the machine hostage.  abortUnwindGrace bounds how
// long an aborted run waits for SPMD and server goroutines to unwind
// cooperatively — a location stuck in non-cooperative compute (an infinite
// loop that never touches a runtime primitive) cannot be preempted, and
// after the grace the run returns its fault anyway rather than deadlock.
const (
	fullDrainBudget  = 60 * time.Second
	abortDrainBudget = 2 * time.Second
	abortUnwindGrace = 30 * time.Second
)

// Execute runs fn in SPMD fashion: one goroutine per location, each passed
// its own Location.  Incoming RMIs are served concurrently by per-location
// server goroutines.  Execute returns when every SPMD goroutine has returned
// and all outstanding RMIs have been handled.  A fault anywhere in the run
// — a handler or body panic, a stall, a wire failure — aborts the machine
// and panics with the resulting *MachineFault on the caller's goroutine
// (the pre-containment behaviour, minus the deadlock); use ExecuteErr to
// handle faults as values.
func (m *Machine) Execute(fn func(loc *Location)) {
	if fault := m.ExecuteErr(fn); fault != nil {
		panic(fault)
	}
}

// ExecuteErr is Execute with structured failure propagation: it returns nil
// for a clean run, or a *MachineFault naming the first fault and the
// per-location outcome.  A fault on any location triggers a machine-wide
// cooperative abort — every location parked in a barrier, fence, future,
// synchronous response or mailbox wait is unblocked within a bounded drain
// instead of deadlocking — and the machine is reusable for another run
// afterwards (its containers' contents, however, are whatever the aborted
// run left behind).
func (m *Machine) ExecuteErr(fn func(loc *Location)) *MachineFault {
	if m.proc != nil {
		return m.procExecuteErr(fn)
	}
	m.beginRun()
	// Bring up the interconnect for this run.  It is built per Execute so
	// wire transports only hold sockets and goroutines while SPMD code runs.
	m.transport = m.transportFactory(m)
	// Start RMI servers.
	for _, l := range m.locations {
		l.startServer()
	}
	if m.stallTimeout > 0 {
		m.startWatchdog(m.stallTimeout)
	}
	var wg sync.WaitGroup
	wg.Add(len(m.locations))
	for _, l := range m.locations {
		go func(l *Location) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, unwound := r.(abortSignal); unwound {
					m.setUnwound(l.id)
					return
				}
				m.recordFault(&LocationFault{
					Location: l.id, Kind: FaultBodyPanic, Err: r, Stack: captureStack(),
				})
			}()
			fn(l)
			// Flush any aggregation buffers left by the SPMD code so
			// trailing asynchronous requests are delivered.
			l.flushAll()
		}(l)
	}
	m.awaitUnwind(&wg)
	// Drain outstanding traffic before stopping the servers (returns early
	// when the run aborted: dropped requests keep pending above zero).
	m.waitQuiescent()
	// The watchdog covered the SPMD run and the quiescence wait; the drain
	// below is bounded on its own.
	m.stopWatchdog()
	// Every handler ran (pending hit zero), but the wire may still owe
	// acknowledgements or delayed duplicates; wait those out, then retain
	// the wire's identity and counters for post-run inspection.
	budget := fullDrainBudget
	if m.aborted() {
		budget = abortDrainBudget
	}
	if err := m.transport.Drain(budget); err != nil {
		m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err})
	}
	m.lastWireName = m.transport.Name()
	m.lastWireStats = m.transport.WireStats()
	for _, l := range m.locations {
		l.stopServer()
	}
	var serverWG sync.WaitGroup
	serverWG.Add(len(m.locations))
	for _, l := range m.locations {
		go func(l *Location) {
			defer serverWG.Done()
			l.serverWG.Wait()
		}(l)
	}
	m.awaitUnwind(&serverWG)
	if err := m.transport.Close(); err != nil {
		m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err})
	}
	m.transport = nil
	return m.collectFault()
}

// beginRun resets the per-run fault, abort, synchronisation and mailbox
// state so the machine can execute again — including after an aborted run,
// which leaves pending counters nonzero and mailboxes interrupted.
func (m *Machine) beginRun() {
	m.foldedStats = nil
	m.foldedWire = nil
	m.abortCh = make(chan struct{})
	m.abortOnce = new(sync.Once)
	m.faultMu.Lock()
	m.faults = nil
	m.status = make([]LocationStatus, len(m.locations))
	m.faultMu.Unlock()
	m.pending.Store(0)
	for i := range m.pendingBySrc {
		m.pendingBySrc[i].Store(0)
	}
	m.barMu.Lock()
	m.barCount = 0
	m.barMu.Unlock()
	for _, l := range m.locations {
		l.inbox.reopen()
		l.handlerStarted.Store(0)
		l.handlerDone.Store(0)
		l.injectionCount.Store(0)
		l.aggMu.Lock()
		for d := range l.aggBufs {
			l.aggBufs[d] = nil
		}
		l.aggMu.Unlock()
		if l.cfg.AdaptiveAggregation {
			l.resetAggregation()
		}
		// Completion callbacks of an aborted run will never fire; drop them
		// so a stale reply cannot complete a new run's token by accident.
		l.tokMu.Lock()
		l.tokens = nil
		l.tokMu.Unlock()
	}
}

// awaitUnwind waits for wg.  On a clean run it blocks indefinitely, exactly
// like wg.Wait.  Once the machine aborts it waits at most abortUnwindGrace
// for the goroutines to unwind cooperatively, then gives up (leaking the
// stuck goroutine — nothing can preempt non-cooperative user code) so the
// fault still reaches the caller.
func (m *Machine) awaitUnwind(wg *sync.WaitGroup) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-m.abortCh:
	}
	select {
	case <-done:
	case <-time.After(abortUnwindGrace):
		m.recordFault(&LocationFault{
			Location: -1, Kind: FaultStall,
			Err: fmt.Sprintf("goroutines failed to unwind within %v of the abort", abortUnwindGrace),
		})
	}
}

// ExecuteOn is a convenience wrapper that builds a machine with p locations
// and the default configuration, runs fn SPMD-style, and returns the machine
// (for stats inspection).
func ExecuteOn(p int, fn func(loc *Location)) *Machine {
	m := NewMachine(p, DefaultConfig())
	m.Execute(fn)
	return m
}

func (m *Machine) addPending(src int, n int64) {
	m.pending.Add(n)
	m.pendingBySrc[src].Add(n)
}

// unpendSent removes n requests issued by src from the pending accounting.
// The multi-process transport calls it after handing a batch to the wire:
// responsibility moves to the receiving process, which re-pends the requests
// at arrival, and the quiescence waves account for frames in flight between
// the two (see procQuiesce).
func (m *Machine) unpendSent(src int, n int64) {
	globalZero := m.pending.Add(-n) == 0
	srcZero := m.pendingBySrc[src].Add(-n) == 0
	if globalZero || srcZero {
		m.quiesceMu.Lock()
		m.quiesceCv.Broadcast()
		m.quiesceMu.Unlock()
	}
}

func (m *Machine) donePending(src int) {
	globalZero := m.pending.Add(-1) == 0
	srcZero := m.pendingBySrc[src].Add(-1) == 0
	if globalZero || srcZero {
		m.quiesceMu.Lock()
		m.quiesceCv.Broadcast()
		m.quiesceMu.Unlock()
	}
}

// waitQuiescent blocks until no RMIs are outstanding.  It must only be
// called while no SPMD goroutine can issue new top-level requests (i.e.
// inside a barrier or after all SPMD functions returned); handler-generated
// requests are accounted for because a handler only decrements pending after
// any requests it issued were already counted.
//
// Handler-issued asynchronous requests may be sitting in aggregation
// buffers with no one left to fill them up to the flush threshold, so the
// wait repeatedly flushes every location's buffers until the machine drains
// (this is the fence's role of delivering all pending traffic).
// An aborted machine can never quiesce — dropped requests keep the pending
// counter above zero — so the wait returns as soon as the abort is observed
// and leaves the unwinding to the caller.
func (m *Machine) waitQuiescent() {
	for m.pending.Load() != 0 {
		if m.aborted() {
			return
		}
		for _, l := range m.locations {
			l.flushAll()
		}
		if m.pending.Load() == 0 {
			return
		}
		waitABit()
	}
}

// waitSrcQuiescent blocks until no RMI issued by location src is
// outstanding.  Requests that handlers spawned on other locations while
// servicing src's traffic are attributed to the forwarding location, which
// matches the paper's os_fence semantics (the caller's own requests have
// been delivered and executed).
func (m *Machine) waitSrcQuiescent(src int) {
	m.quiesceMu.Lock()
	for m.pendingBySrc[src].Load() != 0 {
		if m.aborted() {
			m.quiesceMu.Unlock()
			panic(abortSignal{})
		}
		m.quiesceCv.Wait()
	}
	m.quiesceMu.Unlock()
}

// barrier blocks until all locations have reached it.  It is reusable.  A
// machine abort unwinds every waiter (the missing location will never
// arrive), so a fault on one location cannot strand the others here.
func (m *Machine) barrier() {
	if m.proc != nil {
		m.procBarrier()
		return
	}
	m.checkAbort()
	m.barMu.Lock()
	phase := m.barPhase
	m.barCount++
	if m.barCount == len(m.locations) {
		m.barCount = 0
		m.barPhase++
		m.barCv.Broadcast()
		m.barMu.Unlock()
		return
	}
	for phase == m.barPhase {
		m.barCv.Wait()
		if m.aborted() {
			m.barMu.Unlock()
			panic(abortSignal{})
		}
	}
	m.barMu.Unlock()
}

// Location is the RTS abstraction of a processing element: a unit with a
// private address space and execution capability.  All state reachable from
// a Location (registered p_object representatives, container base
// containers, ...) belongs to that location; other locations may only act on
// it through RMIs addressed to this location.
type Location struct {
	machine *Machine
	id      int
	n       int
	cfg     Config

	inbox    *mailbox
	serverWG sync.WaitGroup

	// Aggregation buffers, one per destination.  Under AdaptiveAggregation,
	// aggEWMA tracks each destination's smoothed flush occupancy and
	// aggTarget caches the integer flush threshold derived from it; both are
	// guarded by aggMu alongside the buffers they describe.
	aggMu     sync.Mutex
	aggBufs   [][]*rmiRequest
	aggEWMA   []float64
	aggTarget []int

	// Registered p_object representatives, held as an immutable snapshot
	// slice indexed by handle.  Registration is rare and collective
	// (SPMD-ordered, so the running counter yields identical handles on
	// every location) and copies the table under regMu; lookup happens on
	// every RMI and is a single atomic load plus a slice index — no lock.
	regMu      sync.Mutex
	objects    atomic.Pointer[[]any]
	nextHandle Handle

	// rng is a private, deterministic random source for workloads.
	rng *rand.Rand

	// stats is this location's shard of the machine statistics.
	stats statShard

	// localStats counts per-location activity.
	localRMIs  atomic.Int64
	remoteRMIs atomic.Int64

	// handlerStarted/handlerDone bracket handler execution so the progress
	// watchdog can attribute a stall to the location whose handler never
	// finished; injectionCount drives the deterministic fault injection.
	handlerStarted atomic.Int64
	handlerDone    atomic.Int64
	injectionCount atomic.Int64

	// Completion tokens for value-returning registered operations on
	// self-decoding transports (see ops.go): the origin parks a callback
	// here and the matching KindReply request routes its value back.
	tokMu    sync.Mutex
	tokens   map[uint64]func(v any) bool
	tokenSeq uint64
}

func newLocation(m *Machine, id, n int, cfg Config) *Location {
	l := &Location{
		machine: m,
		id:      id,
		n:       n,
		cfg:     cfg,
		inbox:   newMailbox(),
		aggBufs: make([][]*rmiRequest, n),
		rng:     rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id))),
	}
	if cfg.AdaptiveAggregation {
		l.aggEWMA = make([]float64, n)
		l.aggTarget = make([]int, n)
		l.resetAggregation()
	}
	empty := make([]any, 0)
	l.objects.Store(&empty)
	return l
}

// ID returns this location's identifier in [0, NumLocations()).
func (l *Location) ID() int { return l.id }

// NumLocations returns the number of locations in the machine.
func (l *Location) NumLocations() int { return l.n }

// Machine returns the machine this location belongs to.
func (l *Location) Machine() *Machine { return l.machine }

// Rand returns the location-private deterministic random source.
func (l *Location) Rand() *rand.Rand { return l.rng }

// LocalRMIs reports how many RMIs this location executed locally
// (shortcut path, no message) since the machine was created.
func (l *Location) LocalRMIs() int64 { return l.localRMIs.Load() }

// RemoteRMIs reports how many RMIs this location sent to other locations.
func (l *Location) RemoteRMIs() int64 { return l.remoteRMIs.Load() }

// RegisterObject registers a p_object representative with the RTS and
// returns its handle.  Registration must be performed collectively in the
// same order on every location (the usual SPMD constructor discipline), so
// that corresponding representatives share a handle.
func (l *Location) RegisterObject(obj any) Handle {
	l.regMu.Lock()
	h := l.nextHandle
	l.nextHandle++
	old := *l.objects.Load()
	next := make([]any, int(h)+1)
	copy(next, old)
	next[h] = obj
	l.objects.Store(&next)
	l.regMu.Unlock()
	return h
}

// UnregisterObject removes a previously registered representative.
func (l *Location) UnregisterObject(h Handle) {
	l.regMu.Lock()
	old := *l.objects.Load()
	if int(h) < len(old) && old[h] != nil {
		next := append([]any(nil), old...)
		next[h] = nil
		l.objects.Store(&next)
	}
	l.regMu.Unlock()
}

// Object returns the representative registered under h on this location.
// Framework code running inside an RMI handler uses it to reach sibling
// p_objects (e.g. the outer container of an embedded base) at the
// destination.  It panics if no object is registered under h.
func (l *Location) Object(h Handle) any { return l.object(h) }

// object looks up a registered representative in the current table
// snapshot.  This is the per-RMI fast path: one atomic load, no lock.
func (l *Location) object(h Handle) any {
	tbl := *l.objects.Load()
	if h >= 0 && int(h) < len(tbl) {
		if o := tbl[h]; o != nil {
			return o
		}
	}
	panic(fmt.Sprintf("runtime: location %d has no object registered for handle %d", l.id, h))
}

// startServer launches the goroutine that executes incoming RMIs for this
// location.  Handlers are executed one at a time, which provides the
// paper's per-location serialisation of incoming requests and the FIFO
// ordering guarantee for a given (source, destination) pair.  The server
// drains the mailbox in whole batches (one lock acquisition per batch) and
// returns executed requests to the request pool.
func (l *Location) startServer() {
	l.serverWG.Add(1)
	go func() {
		defer l.serverWG.Done()
		var spare []*rmiRequest
		for {
			batch := l.inbox.popBatch(spare)
			if batch == nil {
				return
			}
			for i, req := range batch {
				l.execute(req)
				putRequest(req)
				batch[i] = nil
			}
			spare = batch
		}
	}()
}

func (l *Location) stopServer() { l.inbox.close() }

// execute runs one RMI request against the local representative.  A panic
// in the handler (or in the framework lookup around it) is contained: it is
// captured as a FaultHandlerPanic with the handler's stack and aborts the
// machine, instead of killing the process from a server goroutine and
// stranding every other location.  The abort sentinel itself (a handler
// unblocked mid-abort) is swallowed — the fault that caused it is already
// on file.
func (l *Location) execute(req *rmiRequest) {
	l.handlerStarted.Add(1)
	defer l.handlerDone.Add(1)
	defer l.machine.donePending(req.src)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, unwound := r.(abortSignal); unwound {
			return
		}
		l.machine.recordFault(&LocationFault{
			Location: l.id, Kind: FaultHandlerPanic, Err: r, Stack: captureStack(),
		})
	}()
	if req.kind == transport.KindReply {
		// Reply routing, not a handler: no delay, no injection, and it does
		// not count as a handled RMI (the shared-memory completion path it
		// mirrors never reaches a server either).
		l.completeToken(req.token, req.arg)
		return
	}
	if req.delay > 0 {
		time.Sleep(req.delay)
	}
	l.maybeInjectFault()
	l.stats.rmisHandled.Add(1)
	obj := l.object(req.handle)
	switch {
	case req.resp != nil:
		if req.retArgFn != nil {
			req.resp <- req.retArgFn(obj, l, req.arg)
		} else {
			req.resp <- req.retFn(obj, l)
		}
	case req.fut != nil:
		// Split-phase request executed natively: the server computes the
		// result, accounts the simulated reply traffic and completes the
		// caller's future — no wrapper closure on the request path.
		var out any
		if req.retArgFn != nil {
			out = req.retArgFn(obj, l, req.arg)
		} else {
			out = req.retFn(obj, l)
		}
		l.AccountReply(l.payloadBytes(out))
		req.fut.Complete(out)
	case req.argFn != nil:
		req.argFn(obj, l, req.arg)
	default:
		req.fn(obj, l)
	}
}

// reqPool recycles rmiRequest descriptors: the element-access hot path
// allocates one per remote request, and the server returns it after the
// handler ran, so steady-state traffic runs without per-request garbage.
var reqPool = sync.Pool{New: func() any { return new(rmiRequest) }}

// getRequest returns a zeroed request descriptor from the pool.
func getRequest() *rmiRequest { return reqPool.Get().(*rmiRequest) }

// putRequest clears and recycles a request descriptor.  Callers must not
// retain any reference to it afterwards.
func putRequest(r *rmiRequest) {
	*r = rmiRequest{}
	reqPool.Put(r)
}
