package runtime

import (
	"fmt"
	"math/rand"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"
	"time"
)

// This file is the fault-containment layer of the RTS.  The paper's SPMD
// machine model assumes every location cooperates forever; this layer makes
// the simulated machine survivable instead: a panic in an RMI handler or an
// SPMD body, a stalled location, or a wire failure is captured as a
// LocationFault, the machine performs a cooperative abort that unblocks
// every location parked in a barrier, fence, future or mailbox wait, and
// Machine.ExecuteErr returns a MachineFault naming the first cause plus the
// per-location outcome — instead of deadlocking the run.

// FaultKind classifies what brought a location (or the machine) down.
type FaultKind uint8

const (
	// FaultHandlerPanic is a panic recovered inside an RMI handler on the
	// location's server goroutine.
	FaultHandlerPanic FaultKind = iota
	// FaultBodyPanic is a panic recovered from the location's SPMD body.
	FaultBodyPanic
	// FaultStall is raised by the progress watchdog: requests were pending
	// but no machine counter moved for the configured stall deadline.
	FaultStall
	// FaultTransport is a wire-level failure (drain timeout, lost rendezvous
	// batches, dial failure after retries, peer reset mid-run).
	FaultTransport
)

// String names the fault kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultHandlerPanic:
		return "handler panic"
	case FaultBodyPanic:
		return "SPMD body panic"
	case FaultStall:
		return "stall"
	case FaultTransport:
		return "transport fault"
	default:
		return fmt.Sprintf("fault kind %d", uint8(k))
	}
}

// LocationFault is one captured failure.  Location is -1 when the fault is
// machine-wide (a transport failure or an unattributable stall).
type LocationFault struct {
	Location int
	Kind     FaultKind
	Err      any    // recovered panic value or error
	Stack    []byte // goroutine stack captured at the fault site, if any

	// remote marks a fault applied from another process's broadcast in
	// multi-process mode, so the machine does not forward it back to the hub
	// (which already knows).
	remote bool
}

// Error formats the fault as one line; the captured stack is kept apart so
// the summary stays readable.
func (f *LocationFault) Error() string {
	where := fmt.Sprintf("location %d", f.Location)
	if f.Location < 0 {
		where = "machine"
	}
	return fmt.Sprintf("%s: %s: %v", where, f.Kind, f.Err)
}

// LocationStatus is the per-location outcome of an aborted run.
type LocationStatus uint8

const (
	// StatusOK: the location's SPMD body returned normally.
	StatusOK LocationStatus = iota
	// StatusFaulted: the location raised a fault (panic or stall).
	StatusFaulted
	// StatusUnwound: the location was parked in a blocking primitive and
	// was unwound by the machine abort.
	StatusUnwound
)

// String names the status for diagnostics.
func (s LocationStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFaulted:
		return "faulted"
	case StatusUnwound:
		return "unwound"
	default:
		return fmt.Sprintf("status %d", uint8(s))
	}
}

// MachineFault is what ExecuteErr returns when a run aborted: the first
// fault (the cause — later faults are usually knock-on effects of the
// abort), every fault in arrival order, and the per-location outcome.
// It implements error; Machine.Execute panics with it, preserving the
// pre-fault-containment crash behaviour for callers that never look.
type MachineFault struct {
	Cause  *LocationFault
	Faults []*LocationFault
	Status []LocationStatus
}

// Error summarises the abort: the cause first (naming the faulting
// location), then the per-location outcome.
func (f *MachineFault) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime: machine aborted: %s", f.Cause.Error())
	if len(f.Faults) > 1 {
		fmt.Fprintf(&b, " (+%d secondary faults)", len(f.Faults)-1)
	}
	var unwound, ok int
	for _, s := range f.Status {
		switch s {
		case StatusUnwound:
			unwound++
		case StatusOK:
			ok++
		}
	}
	fmt.Fprintf(&b, "; locations: %d ok, %d unwound", ok, unwound)
	return b.String()
}

// Unwrap exposes the cause for errors.Is/As chains.
func (f *MachineFault) Unwrap() error { return f.Cause }

// abortSignal is the sentinel panic value used to unwind SPMD goroutines
// parked in blocking primitives (Barrier, Fence, Future.Get, SyncRMI,
// OneSidedFence, Executor.Run) once the machine aborts.  The per-location
// recover recognises it and records the location as unwound, not faulted.
type abortSignal struct{}

func (abortSignal) String() string { return "runtime: machine aborted" }

// captureStack snapshots the calling goroutine's stack for a LocationFault.
func captureStack() []byte {
	buf := make([]byte, 64<<10)
	return buf[:goruntime.Stack(buf, false)]
}

// FaultInjection deterministically injects one fault into a run, so the
// whole containment path — recovery, abort, drain, MachineFault — can be
// exercised on any transport and seed.  The injection triggers on the
// target location's server goroutine when it is about to handle its
// (AfterHandled+1)-th incoming RMI; workloads that never route that much
// traffic to the target run fault-free.
type FaultInjection struct {
	// Location is the target location.
	Location int
	// Kind selects the fault: FaultHandlerPanic panics the handler,
	// FaultStall parks the server goroutine until the machine aborts
	// (which only the progress watchdog can trigger — set
	// Config.StallTimeout).
	Kind FaultKind
	// AfterHandled is how many incoming RMIs the target serves before the
	// injection fires.
	AfterHandled int64
}

// SeededFaultInjection derives an injection plan from a seed, the way the
// chaos wire derives its fault schedule: the same (seed, locations, kind)
// always targets the same location after the same number of handled
// requests.
func SeededFaultInjection(seed int64, locations int, kind FaultKind) *FaultInjection {
	rng := rand.New(rand.NewSource(seed))
	return &FaultInjection{
		Location:     rng.Intn(locations),
		Kind:         kind,
		AfterHandled: rng.Int63n(32),
	}
}

// faultInjectionFromEnv resolves the PCF_CHAOS_PANIC / PCF_CHAOS_STALL
// environment variables (each holds an injection seed) for machines whose
// Config carries no explicit plan.  Like PCF_CHAOS_SEED they are meant for
// the dedicated fault suite and pcfbench — with either set, EVERY Execute
// in the process is fault-injected.  Unparsable values panic, matching the
// PCF_TRANSPORT fail-fast posture.
func faultInjectionFromEnv(locations int) *FaultInjection {
	parse := func(env string, kind FaultKind) *FaultInjection {
		s := os.Getenv(env)
		if s == "" {
			return nil
		}
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("runtime: bad %s %q: %v", env, s, err))
		}
		return SeededFaultInjection(seed, locations, kind)
	}
	if inj := parse("PCF_CHAOS_PANIC", FaultHandlerPanic); inj != nil {
		return inj
	}
	return parse("PCF_CHAOS_STALL", FaultStall)
}

// stallTimeoutFromEnv resolves PCF_STALL_TIMEOUT (a Go duration string) for
// machines whose Config leaves StallTimeout zero.
func stallTimeoutFromEnv() time.Duration {
	s := os.Getenv("PCF_STALL_TIMEOUT")
	if s == "" {
		return 0
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		panic(fmt.Sprintf("runtime: bad PCF_STALL_TIMEOUT %q: %v", s, err))
	}
	return d
}

// defaultInjectedStallTimeout guards the one configuration that would
// otherwise deadlock by construction: a seeded stall injection with no
// watchdog to convert it into a fault.
const defaultInjectedStallTimeout = 5 * time.Second

// recordFault files a fault and triggers the machine abort.  The first
// fault becomes the MachineFault's cause; later ones are retained as
// secondary.  Safe to call from any goroutine.
func (m *Machine) recordFault(f *LocationFault) {
	m.faultMu.Lock()
	m.faults = append(m.faults, f)
	if f.Location >= 0 && f.Location < len(m.status) {
		m.status[f.Location] = StatusFaulted
	}
	hook := m.onFault
	m.faultMu.Unlock()
	m.abort()
	// In multi-process mode locally raised faults are forwarded to the
	// launcher hub (after the local abort is under way, so a slow control
	// plane cannot delay the unwind).  Remotely applied faults are not
	// re-forwarded: the hub broadcast them to us in the first place.
	if hook != nil && !f.remote {
		hook(f)
	}
}

// setUnwound marks a location as unwound by the abort, unless it already
// faulted in its own right.
func (m *Machine) setUnwound(loc int) {
	m.faultMu.Lock()
	if m.status[loc] == StatusOK {
		m.status[loc] = StatusUnwound
	}
	m.faultMu.Unlock()
}

// collectFault folds the run's faults into the MachineFault returned by
// ExecuteErr, or nil for a clean run.
func (m *Machine) collectFault() *MachineFault {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	if len(m.faults) == 0 {
		return nil
	}
	return &MachineFault{
		Cause:  m.faults[0],
		Faults: append([]*LocationFault(nil), m.faults...),
		Status: append([]LocationStatus(nil), m.status...),
	}
}

// abort triggers the machine-wide cooperative abort exactly once per run:
// the abort channel closes (unblocking every select on it — futures,
// synchronous responses, injected stalls, the watchdog), the barrier and
// quiescence condition variables broadcast (their wait loops re-check the
// abort flag and unwind), and every mailbox is interrupted so the server
// goroutines stop pulling work.
func (m *Machine) abort() {
	m.abortOnce.Do(func() {
		close(m.abortCh)
		m.barMu.Lock()
		m.barCv.Broadcast()
		m.barMu.Unlock()
		m.quiesceMu.Lock()
		m.quiesceCv.Broadcast()
		m.quiesceMu.Unlock()
		for _, l := range m.locations {
			l.inbox.interrupt()
		}
	})
}

// aborted reports whether the current run has aborted.
func (m *Machine) aborted() bool {
	select {
	case <-m.abortCh:
		return true
	default:
		return false
	}
}

// checkAbort unwinds the calling SPMD goroutine when the machine has
// aborted.  Blocking primitives call it from their wait loops.
func (m *Machine) checkAbort() {
	if m.aborted() {
		panic(abortSignal{})
	}
}

// progressSig is one watchdog sample of the machine-wide counters that a
// live run keeps moving.  Two equal consecutive samples with work pending
// mean nothing happened in between.
type progressSig struct {
	pending   int64
	handled   int64
	messages  int64
	started   int64
	finished  int64
	barPhase  int
	barCount  int
	mailboxes int
}

// progressSignature folds the machine state into one comparable sample.
func (m *Machine) progressSignature() progressSig {
	var sig progressSig
	sig.pending = m.pending.Load()
	for _, l := range m.locations {
		sig.handled += l.stats.rmisHandled.Load()
		sig.messages += l.stats.messagesSent.Load()
		sig.started += l.handlerStarted.Load()
		sig.finished += l.handlerDone.Load()
		sig.mailboxes += l.inbox.length()
	}
	m.barMu.Lock()
	sig.barPhase, sig.barCount = m.barPhase, m.barCount
	m.barMu.Unlock()
	return sig
}

// suspectLocation guesses which location a stall should be attributed to:
// first a location with a handler that started but never finished (a stuck
// or stalled handler), then one with undrained mailbox traffic, else -1
// (machine-wide).
func (m *Machine) suspectLocation() int {
	for _, l := range m.locations {
		if l.handlerStarted.Load() > l.handlerDone.Load() {
			return l.id
		}
	}
	for _, l := range m.locations {
		if l.inbox.length() > 0 {
			return l.id
		}
	}
	return -1
}

// stallDiagnostic dumps the counters a stalled machine froze at, so the
// "no progress" fault is diagnosable from its message alone.
func (m *Machine) stallDiagnostic(deadline time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "no progress for %v with %d requests pending;", deadline, m.pending.Load())
	for _, l := range m.locations {
		fmt.Fprintf(&b, " loc%d{issued-pending=%d mailbox=%d handling=%d handled=%d}",
			l.id,
			m.pendingBySrc[l.id].Load(),
			l.inbox.length(),
			l.handlerStarted.Load()-l.handlerDone.Load(),
			l.stats.rmisHandled.Load())
	}
	return b.String()
}

// startWatchdog launches the progress watchdog for the run: it samples the
// machine counters and converts a frozen sample with pending work into a
// FaultStall once the stall deadline passes.  A machine with zero pending
// requests is never flagged — locations may legitimately compute locally
// for any amount of time.
func (m *Machine) startWatchdog(deadline time.Duration) {
	stop := make(chan struct{})
	done := make(chan struct{})
	m.watchdogStop, m.watchdogDone = stop, done
	abortCh := m.abortCh
	go func() {
		defer close(done)
		interval := deadline / 8
		if interval < 200*time.Microsecond {
			interval = 200 * time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		last := m.progressSignature()
		lastChange := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-abortCh:
				return
			case <-ticker.C:
			}
			sig := m.progressSignature()
			if sig != last || sig.pending == 0 {
				last, lastChange = sig, time.Now()
				continue
			}
			if time.Since(lastChange) >= deadline {
				m.recordFault(&LocationFault{
					Location: m.suspectLocation(),
					Kind:     FaultStall,
					Err:      m.stallDiagnostic(deadline),
				})
				return
			}
		}
	}()
}

// stopWatchdog ends the watchdog (if one is running) and waits it out.
func (m *Machine) stopWatchdog() {
	if m.watchdogStop == nil {
		return
	}
	close(m.watchdogStop)
	<-m.watchdogDone
	m.watchdogStop, m.watchdogDone = nil, nil
}

// maybeInjectFault fires the configured fault injection when this location
// is about to handle the request the plan targets.
func (l *Location) maybeInjectFault() {
	inj := l.cfg.FaultInjection
	if inj == nil || inj.Location != l.id {
		return
	}
	if l.injectionCount.Add(1) != inj.AfterHandled+1 {
		return
	}
	switch inj.Kind {
	case FaultStall:
		// Park the server goroutine mid-handler.  Only the watchdog can see
		// this — pending work with frozen counters — and its abort is what
		// releases the stall, so the goroutine never leaks.
		<-l.machine.abortCh
	default:
		panic(fmt.Sprintf("runtime: injected %v at location %d after %d handled requests",
			inj.Kind, l.id, inj.AfterHandled))
	}
}
