package runtime

import "sync"

// This file implements the payload-size resolution for RMI byte accounting.
// Three tiers, all reflection-free:
//
//  1. a built-in fast path for the 8-byte scalars the element paths move
//     (identical to the historical flat default, so counters do not move);
//  2. the Sizer interface, for payloads that carry their own size;
//  3. a registry of generics-instantiated sizers (RegisterSizer), each a
//     plain type assertion — no reflect on the hot path.
//
// A value that matches none of the tiers falls back to the flat default and
// is counted in the SizerMisses statistic: the fallback is a guess, and the
// stat makes the guessing visible instead of silent.

// Sizer is implemented by argument payloads that want their (simulated)
// marshalled size accounted in the machine statistics.  It mirrors the
// paper's define_type marshalling hooks: we do not serialise bytes over a
// wire, but we do track how many bytes would have moved.
type Sizer interface {
	ByteSize() int
}

// defaultPayloadBytes is the flat per-value fallback used when no sizer
// matches (the historical behaviour for every non-Sizer payload).
const defaultPayloadBytes = 8

// sizerFn reports the simulated size of v if this entry's type matches.
type sizerFn func(v any) (int, bool)

// sizerRegistry is an immutable snapshot slice of registered sizers; lookup
// is an atomic load plus a handful of type assertions.  Registration is rare
// (init time) and copies the table under sizerMu.
var (
	sizerMu       sync.Mutex
	sizerRegistry atomicSizerTable
)

type atomicSizerTable struct {
	mu    sync.RWMutex
	table []sizerFn
}

func (t *atomicSizerTable) load() []sizerFn {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.table
}

func (t *atomicSizerTable) store(fns []sizerFn) {
	t.mu.Lock()
	t.table = fns
	t.mu.Unlock()
}

// RegisterSizer registers a marshalled-size function for payloads of type T.
// It is consulted by PayloadBytes after the built-in fast path and the Sizer
// interface; the lookup is a type assertion per registered entry, so keep
// the registry to the handful of types a workload actually ships.  Sizers
// registered for a type that already matches an earlier tier are never
// consulted.  Safe for concurrent use; intended for init time.
func RegisterSizer[T any](size func(T) int) {
	sizerMu.Lock()
	defer sizerMu.Unlock()
	old := sizerRegistry.load()
	next := make([]sizerFn, len(old), len(old)+1)
	copy(next, old)
	next = append(next, func(v any) (int, bool) {
		t, ok := v.(T)
		if !ok {
			return 0, false
		}
		return size(t), true
	})
	sizerRegistry.store(next)
}

// sizeOf resolves v through the three tiers; ok reports whether any tier
// matched (false means the caller is about to guess the flat default).
func sizeOf(v any) (int, bool) {
	switch v.(type) {
	case nil:
		// A nil result marshals as a presence marker; keep the historical
		// flat default so reply accounting does not move.
		return defaultPayloadBytes, true
	case int64, uint64, int, uint, float64:
		// The 8-byte scalars every element path ships; equals the historical
		// flat default by construction.
		return defaultPayloadBytes, true
	}
	if s, ok := v.(Sizer); ok {
		return s.ByteSize(), true
	}
	for _, fn := range sizerRegistry.load() {
		if n, ok := fn(v); ok {
			return n, true
		}
	}
	return defaultPayloadBytes, false
}

// PayloadBytes returns the simulated marshalled size of v: the built-in
// scalar fast path, its ByteSize if it implements Sizer, a registered sizer
// (RegisterSizer), or a flat default per value.  Framework code holding a
// Location should prefer Location.PayloadBytes, which additionally counts
// fallback guesses in the SizerMisses statistic.
func PayloadBytes(v any) int {
	n, _ := sizeOf(v)
	return n
}

// PayloadBytes is the accounted flavour of the package-level PayloadBytes:
// when every sizer tier misses and the flat default is guessed, the miss is
// counted in this location's SizerMisses shard, so hot paths that silently
// fall back to the guess show up in Machine.Stats instead of hiding.
func (l *Location) PayloadBytes(v any) int {
	return l.payloadBytes(v)
}

func (l *Location) payloadBytes(v any) int {
	n, ok := sizeOf(v)
	if !ok {
		l.stats.sizerMisses.Add(1)
	}
	return n
}
