package runtime

// Collective operations.  All locations in the machine must call the same
// collective in the same order (the usual SPMD discipline); the semantics
// match the paper's ARMI collectives (barrier, broadcast, reduce) which in
// turn mirror their MPI counterparts.

// Barrier blocks until every location has reached it.
func (l *Location) Barrier() {
	l.machine.barrier()
}

// Broadcast distributes the value supplied by the root location to all
// locations and returns it everywhere.  Non-root callers may pass any value;
// it is ignored.
func (l *Location) Broadcast(root int, v any) any {
	m := l.machine
	if m.proc != nil {
		return m.procBroadcast(root, v)
	}
	if l.id == root {
		m.collectMu.Lock()
		m.collectVals[root] = v
		m.collectMu.Unlock()
	}
	m.barrier()
	m.collectMu.Lock()
	out := m.collectVals[root]
	m.collectMu.Unlock()
	m.barrier()
	return out
}

// gather deposits each location's contribution and returns, on every
// location, a snapshot of all contributions indexed by location id.
func (l *Location) gather(v any) []any {
	m := l.machine
	if m.proc != nil {
		return m.procGather(v)
	}
	m.collectMu.Lock()
	m.collectVals[l.id] = v
	m.collectMu.Unlock()
	m.barrier()
	out := make([]any, l.n)
	m.collectMu.Lock()
	copy(out, m.collectVals)
	m.collectMu.Unlock()
	m.barrier()
	return out
}

// AllGather returns every location's contribution, indexed by location id,
// on every location.
func (l *Location) AllGather(v any) []any { return l.gather(v) }

// AllReduce combines every location's contribution with op (which must be
// associative and commutative) and returns the combined value on every
// location.
func (l *Location) AllReduce(v any, op func(a, b any) any) any {
	vals := l.gather(v)
	acc := vals[0]
	for _, x := range vals[1:] {
		acc = op(acc, x)
	}
	return acc
}

// Reduce combines every location's contribution with op and returns the
// result on the root location only; all other locations receive nil.
func (l *Location) Reduce(root int, v any, op func(a, b any) any) any {
	vals := l.gather(v)
	if l.id != root {
		return nil
	}
	acc := vals[0]
	for _, x := range vals[1:] {
		acc = op(acc, x)
	}
	return acc
}

// AllReduceInt is a typed helper for the common integer reduction.
func AllReduceInt(l *Location, v int64, op func(a, b int64) int64) int64 {
	out := l.AllReduce(v, func(a, b any) any { return op(a.(int64), b.(int64)) })
	return out.(int64)
}

// AllReduceSum sums an int64 contribution across all locations.
func AllReduceSum(l *Location, v int64) int64 {
	return AllReduceInt(l, v, func(a, b int64) int64 { return a + b })
}

// AllReduceMax computes the maximum of an int64 contribution across all
// locations.
func AllReduceMax(l *Location, v int64) int64 {
	return AllReduceInt(l, v, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceFloat sums a float64 contribution across all locations.
func AllReduceFloat(l *Location, v float64) float64 {
	out := l.AllReduce(v, func(a, b any) any { return a.(float64) + b.(float64) })
	return out.(float64)
}

// AllGatherT gathers a typed contribution from every location.
func AllGatherT[T any](l *Location, v T) []T {
	raw := l.gather(v)
	out := make([]T, len(raw))
	for i, x := range raw {
		out[i] = x.(T)
	}
	return out
}

// AllReduceT combines typed contributions from every location.
func AllReduceT[T any](l *Location, v T, op func(a, b T) T) T {
	vals := AllGatherT(l, v)
	acc := vals[0]
	for _, x := range vals[1:] {
		acc = op(acc, x)
	}
	return acc
}

// BroadcastT broadcasts a typed value from root to all locations.
func BroadcastT[T any](l *Location, root int, v T) T {
	return l.Broadcast(root, v).(T)
}

// ExclusiveScan returns, on each location, the combination (with op) of the
// contributions of all lower-numbered locations, and `initial` on location
// 0.  It is the building block for the paper's prefix-sum pAlgorithms and
// for global index assignment in dynamic containers.
func ExclusiveScan[T any](l *Location, v T, initial T, op func(a, b T) T) T {
	vals := AllGatherT(l, v)
	acc := initial
	for i := 0; i < l.id; i++ {
		acc = op(acc, vals[i])
	}
	return acc
}
