package runtime

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Multi-process execution.
//
// A launched job consists of one HUB process (the launcher — cmd/pcflaunch,
// or a program re-executing itself via LaunchSelf) and NProcs CHILD
// processes, one per location.  Each child runs the same SPMD program; the
// runtime drives only the child's own location and ships every remote
// request over the reliable TCP mesh as a self-decoding frame (registered
// operations only — a Go closure cannot cross a process boundary, so an
// unregistered request in proc mode is a structured transport fault, not a
// rendezvous).
//
// The hub carries the CONTROL PLANE: a gob stream per child over which the
// children run numbered collective rounds (barrier, gather, quiescence
// votes, data-plane address exchange) and through which faults propagate.
// The hub is workload-agnostic — it only matches round numbers and relays
// opaque payloads — so the exact same launcher binary drives any program.
// The DATA PLANE (RMI frames) never touches the hub: children talk directly
// over the TCP mesh, one listener per process (see transport.NewTCPMesh).
//
// Environment contract between hub and child:
//
//	PCF_PROC_RANK     this child's location id (0-based)
//	PCF_PROC_NPROCS   number of processes (= locations)
//	PCF_PROC_CONTROL  host:port of the hub's control listener

const (
	procRankEnv = "PCF_PROC_RANK"
	procNEnv    = "PCF_PROC_NPROCS"
	procCtlEnv  = "PCF_PROC_CONTROL"
)

// Control-plane message kinds.
const (
	ctlHello     uint8 = iota // child -> hub: {Rank}
	ctlReady                  // hub -> child: all ranks connected
	ctlRound                  // child -> hub: contribution {Rank, Seq, Payload}
	ctlRoundDone              // hub -> child: gathered {Seq, Payloads}
	ctlFault                  // child -> hub: {Fault}
	ctlAbort                  // hub -> child: {Fault} broadcast
	ctlBye                    // child -> hub: clean shutdown
)

// ctlMsg is the single message type of the control plane.
type ctlMsg struct {
	Kind     uint8
	Rank     int
	Seq      uint64
	Payload  []byte
	Payloads [][]byte
	Fault    *ProcFault
}

// ProcFault is a fault crossing a process boundary: a flattened
// LocationFault (the panic value and stack travel as strings) plus the run
// epoch it belongs to, so a late broadcast cannot abort the wrong run.
// Fatal faults — a child process died — apply to every run, current and
// future: the job cannot continue without the dead rank.
type ProcFault struct {
	Location int
	Kind     FaultKind
	Msg      string
	Epoch    uint64
	Fatal    bool
}

// procEnv reads the child environment contract, returning ok=false outside a
// launched child.
func procEnv() (rank, n int, ctl string, ok bool) {
	rs := os.Getenv(procRankEnv)
	if rs == "" {
		return 0, 0, "", false
	}
	rank, err := strconv.Atoi(rs)
	if err != nil {
		panic(fmt.Sprintf("runtime: bad %s %q: %v", procRankEnv, rs, err))
	}
	n, err = strconv.Atoi(os.Getenv(procNEnv))
	if err != nil {
		panic(fmt.Sprintf("runtime: bad %s %q: %v", procNEnv, os.Getenv(procNEnv), err))
	}
	ctl = os.Getenv(procCtlEnv)
	if ctl == "" {
		panic(fmt.Sprintf("runtime: %s set but %s empty", procRankEnv, procCtlEnv))
	}
	if rank < 0 || rank >= n {
		panic(fmt.Sprintf("runtime: %s=%d outside [0,%d)", procRankEnv, rank, n))
	}
	return rank, n, ctl, true
}

// procRuntime is the child side of the control plane: one per launched child
// process, shared by every machine the process creates.
type procRuntime struct {
	rank int
	n    int

	conn  net.Conn
	encMu sync.Mutex
	enc   *gob.Encoder

	mu     sync.Mutex
	seq    uint64                   // next collective round number
	epoch  uint64                   // current run number (attach increments)
	rounds map[uint64]chan [][]byte // round waiters by sequence number
	m      *Machine                 // machine of the run in progress
	dead   error                    // control plane unusable (fatal abort, hub gone)
	fatal  *ProcFault               // fatal fault to apply to future runs
}

var (
	procOnce sync.Once
	procRT   *procRuntime
	procInit error
)

// ChildMain initialises the multi-process child runtime: it reads the
// launcher's environment contract, connects to the hub's control listener
// and waits until every rank of the job has checked in.  Call it early in
// main().  Outside a launched child (PCF_PROC_RANK unset) it does nothing
// and returns false.  It is idempotent; a failure to reach the hub panics —
// a launched child that cannot join its job has nothing sensible to do.
func ChildMain() bool {
	if _, _, _, ok := procEnv(); !ok {
		return false
	}
	if _, err := procConnect(); err != nil {
		panic(fmt.Sprintf("runtime: joining launched job: %v", err))
	}
	return true
}

// ProcRank returns this process's rank and the number of processes in the
// launched job, or ok=false when the process was not started by a launcher.
func ProcRank() (rank, nprocs int, ok bool) {
	rank, nprocs, _, ok = procEnv()
	return rank, nprocs, ok
}

// ChildDone signals a clean shutdown to the hub.  Call it when the program
// has finished its work, before exiting; a child that exits without it is
// treated as died and aborts the surviving ranks.  No-op outside a child.
func ChildDone() {
	p := currentProc()
	if p == nil {
		return
	}
	_ = p.send(&ctlMsg{Kind: ctlBye, Rank: p.rank})
}

// currentProc returns the child runtime if this process has one connected.
func currentProc() *procRuntime {
	if _, _, _, ok := procEnv(); !ok {
		return nil
	}
	p, err := procConnect()
	if err != nil {
		return nil
	}
	return p
}

// procConnect dials the hub once per process and starts the control reader.
func procConnect() (*procRuntime, error) {
	procOnce.Do(func() {
		rank, n, ctl, ok := procEnv()
		if !ok {
			procInit = fmt.Errorf("runtime: not a launched child (%s unset)", procRankEnv)
			return
		}
		conn, err := net.DialTimeout("tcp", ctl, 30*time.Second)
		if err != nil {
			procInit = fmt.Errorf("runtime: rank %d dialling control plane %s: %w", rank, ctl, err)
			return
		}
		p := &procRuntime{
			rank:   rank,
			n:      n,
			conn:   conn,
			enc:    gob.NewEncoder(conn),
			rounds: make(map[uint64]chan [][]byte),
		}
		if err := p.send(&ctlMsg{Kind: ctlHello, Rank: rank}); err != nil {
			procInit = fmt.Errorf("runtime: rank %d hello: %w", rank, err)
			return
		}
		// Wait for the hub's ready before returning: every rank is connected,
		// so collective rounds cannot race the job bring-up.
		dec := gob.NewDecoder(conn)
		var msg ctlMsg
		if err := dec.Decode(&msg); err != nil || msg.Kind != ctlReady {
			procInit = fmt.Errorf("runtime: rank %d waiting for job bring-up: %v (kind %d)", rank, err, msg.Kind)
			return
		}
		go p.readLoop(dec)
		procRT = p
	})
	return procRT, procInit
}

// send writes one control message (the gob encoder is not concurrency-safe).
func (p *procRuntime) send(msg *ctlMsg) error {
	p.encMu.Lock()
	defer p.encMu.Unlock()
	return p.enc.Encode(msg)
}

// readLoop dispatches hub messages: round results to their waiters, abort
// broadcasts to the attached machine.
func (p *procRuntime) readLoop(dec *gob.Decoder) {
	for {
		var msg ctlMsg
		if err := dec.Decode(&msg); err != nil {
			p.die(fmt.Errorf("runtime: rank %d lost the control plane: %w", p.rank, err))
			return
		}
		switch msg.Kind {
		case ctlRoundDone:
			p.mu.Lock()
			ch := p.rounds[msg.Seq]
			delete(p.rounds, msg.Seq)
			p.mu.Unlock()
			if ch != nil {
				ch <- msg.Payloads
			}
		case ctlAbort:
			p.onAbort(msg.Fault)
		}
	}
}

// onAbort applies a hub abort broadcast.  Epoch-scoped faults only abort the
// run they belong to; fatal faults (a dead process) kill the job: the
// current run aborts and every later round fails immediately.
func (p *procRuntime) onAbort(f *ProcFault) {
	if f == nil {
		return
	}
	p.mu.Lock()
	m := p.m
	apply := f.Fatal || (m != nil && f.Epoch == p.epoch)
	if f.Fatal {
		p.fatal = f
		p.dead = fmt.Errorf("runtime: job aborted: %s", f.Msg)
		for seq, ch := range p.rounds {
			delete(p.rounds, seq)
			close(ch)
		}
	}
	p.mu.Unlock()
	if !apply || m == nil {
		return
	}
	if f.Location == p.rank && !f.Fatal {
		return // our own fault echoed back; already on file
	}
	m.recordFault(&LocationFault{
		Location: f.Location, Kind: f.Kind, Err: f.Msg, remote: true,
	})
}

// die marks the control plane unusable and unblocks every round waiter.
func (p *procRuntime) die(err error) {
	p.mu.Lock()
	if p.dead == nil {
		p.dead = err
	}
	m := p.m
	for seq, ch := range p.rounds {
		delete(p.rounds, seq)
		close(ch)
	}
	p.mu.Unlock()
	if m != nil {
		m.recordFault(&LocationFault{
			Location: -1, Kind: FaultTransport, Err: err.Error(), remote: true,
		})
	}
}

// attach binds the machine to the control plane for one Execute run and
// advances the run epoch.  Every rank executes the same sequence of runs
// (SPMD discipline), so epochs agree across the job without negotiation.
func (p *procRuntime) attach(m *Machine) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead != nil {
		return p.dead
	}
	if p.m != nil {
		return fmt.Errorf("runtime: rank %d already has a machine executing (one proc-mode Execute at a time)", p.rank)
	}
	p.m = m
	p.epoch++
	// Re-base the round numbering for this run.  Every rank increments the
	// epoch once per Execute (SPMD discipline), so all ranks agree on the
	// base — and a rank that aborted the previous run mid-round can no longer
	// be one round number askew of the others, because stale contributions
	// from run e live in a sequence range run e+1 never uses.
	p.seq = p.epoch << 32
	m.faultMu.Lock()
	m.onFault = p.forwardFault
	m.faultMu.Unlock()
	return nil
}

// detach unbinds the machine at the end of its run.
func (p *procRuntime) detach(m *Machine) {
	p.mu.Lock()
	if p.m == m {
		p.m = nil
	}
	p.mu.Unlock()
	m.faultMu.Lock()
	m.onFault = nil
	m.faultMu.Unlock()
}

// forwardFault ships a locally raised fault to the hub, which broadcasts it
// so every rank aborts the same run.  Remotely applied faults are not
// re-forwarded (the hub already broadcast them).
func (p *procRuntime) forwardFault(f *LocationFault) {
	p.mu.Lock()
	epoch := p.epoch
	dead := p.dead
	p.mu.Unlock()
	if dead != nil {
		return
	}
	loc := f.Location
	if loc < 0 {
		loc = p.rank // attribute machine-wide faults to the reporting rank
	}
	_ = p.send(&ctlMsg{Kind: ctlFault, Rank: p.rank, Fault: &ProcFault{
		Location: loc, Kind: f.Kind, Msg: fmt.Sprintf("%v", f.Err), Epoch: epoch,
	}})
}

// round runs one collective control round: every rank contributes payload,
// the hub gathers all n and broadcasts the result.  SPMD discipline makes
// round numbers line up across ranks without negotiation.  The wait is
// abort-aware: a machine abort (local or broadcast) unwinds the caller.
func (p *procRuntime) round(payload []byte) ([][]byte, error) {
	p.mu.Lock()
	if p.dead != nil {
		err := p.dead
		p.mu.Unlock()
		return nil, err
	}
	seq := p.seq
	p.seq++
	ch := make(chan [][]byte, 1)
	p.rounds[seq] = ch
	var abortCh chan struct{}
	if p.m != nil {
		abortCh = p.m.abortCh
	}
	p.mu.Unlock()

	if err := p.send(&ctlMsg{Kind: ctlRound, Rank: p.rank, Seq: seq, Payload: payload}); err != nil {
		p.die(fmt.Errorf("runtime: rank %d sending round %d: %w", p.rank, seq, err))
		return nil, err
	}
	if abortCh == nil {
		abortCh = make(chan struct{}) // no machine: block until the hub answers or dies
	}
	select {
	case got, ok := <-ch:
		if !ok {
			p.mu.Lock()
			err := p.dead
			p.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("runtime: rank %d round %d failed", p.rank, seq)
			}
			return nil, err
		}
		return got, nil
	case <-abortCh:
		p.mu.Lock()
		delete(p.rounds, seq)
		p.mu.Unlock()
		return nil, errProcAborted
	}
}

var errProcAborted = fmt.Errorf("runtime: run aborted during a collective round")

// collectiveRound is round() with SPMD-side error handling: a failed round
// means the run (or the job) is over, and the caller is an SPMD goroutine,
// so the failure unwinds as the abort sentinel after filing a fault.
func (p *procRuntime) collectiveRound(m *Machine, payload []byte) [][]byte {
	got, err := p.round(payload)
	if err != nil {
		if err != errProcAborted && !m.aborted() {
			m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err.Error(), remote: true})
		}
		panic(abortSignal{})
	}
	return got
}

// Collective value encoding.  Contributions travel as gob inside a
// single-field wrapper so interface values round-trip; workload types used
// in collectives must be registered (RegisterCollectiveType) in every
// process, exactly like gob itself requires.

type gobAny struct{ V any }

// RegisterCollectiveType registers a concrete type for multi-process
// collectives (AllReduce, AllGather, Broadcast payloads).  The common scalar
// and slice types are pre-registered, and gather-style collectives register
// contribution types automatically (every rank encodes its own contribution
// of the same type before decoding anyone else's, so the registration always
// precedes the decode).  Explicit registration remains necessary only for
// types a process must DECODE without ever encoding — a Broadcast payload on
// a non-root rank.  Safe to call multiple times with the same type.
func RegisterCollectiveType(v any) {
	gob.Register(v)
}

func init() {
	for _, v := range []any{
		int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0),
		float32(0), float64(0), bool(false), string(""),
		[]byte(nil), []int(nil), []int64(nil), []uint64(nil),
		[]float64(nil), []string(nil), []bool(nil),
	} {
		gob.Register(v)
	}
}

func procEncodeAny(v any) ([]byte, error) {
	if v != nil {
		// Self-registration: the encoding rank will decode contributions of
		// this same type from its peers in the same round, and gob needs the
		// name→type mapping on the DECODING side.  Registering here (before
		// any decode of the round's results) makes gather-style collectives
		// work for arbitrary named workload types without a manual
		// RegisterCollectiveType at every call site.
		gob.Register(v)
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(&gobAny{V: v}); err != nil {
		return nil, fmt.Errorf("runtime: encoding collective contribution of type %T: %w (RegisterCollectiveType missing?)", v, err)
	}
	return b.Bytes(), nil
}

func procDecodeAny(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var w gobAny
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("runtime: decoding collective contribution: %w", err)
	}
	return w.V, nil
}

// procBarrier is the control-plane barrier: one empty round.
func (m *Machine) procBarrier() {
	m.checkAbort()
	m.proc.collectiveRound(m, nil)
}

// procGather is the control-plane gather behind the collectives: every rank
// contributes one value, every rank receives all n by rank.
func (m *Machine) procGather(v any) []any {
	m.checkAbort()
	payload, err := procEncodeAny(v)
	if err != nil {
		panic(err.Error())
	}
	got := m.proc.collectiveRound(m, payload)
	out := make([]any, m.proc.n)
	for i, b := range got {
		x, err := procDecodeAny(b)
		if err != nil {
			panic(err.Error())
		}
		out[i] = x
	}
	return out
}

// procBroadcast is Broadcast over the control plane.  Only the root encodes
// its value; the other ranks contribute an empty payload.
func (m *Machine) procBroadcast(root int, v any) any {
	m.checkAbort()
	var payload []byte
	if m.proc.rank == root {
		var err error
		if payload, err = procEncodeAny(v); err != nil {
			panic(err.Error())
		}
	}
	got := m.proc.collectiveRound(m, payload)
	out, err := procDecodeAny(got[root])
	if err != nil {
		panic(err.Error())
	}
	return out
}

// procVote is one rank's contribution to the distributed quiescence wave.
type procVote struct {
	Sent    int64 // requests handed to the data plane by this process
	Arrived int64 // requests received from the data plane by this process
}

// procQuiesce is the distributed counterpart of waitQuiescent: the machine
// is globally quiescent when every process's local pending count is zero AND
// the job-wide sent and arrived request totals are equal across two
// consecutive waves with no traffic in between (the classic double-wave
// termination detection — a single matching wave can be a coincidence of
// read skew while a request chain is still bouncing).
func (m *Machine) procQuiesce() {
	pt, ok := m.transport.(*procTransport)
	if !ok {
		panic(fmt.Sprintf("runtime: proc machine is running transport %q; proc mode requires the proc transport", m.transport.Name()))
	}
	self := m.locations[m.proc.rank]
	prev := int64(-1)
	for {
		// Drain local work: flush aggregation buffers and wait for the local
		// pending count (arrivals in execution, plus anything a handler
		// buffered) to reach zero.
		for m.pending.Load() != 0 {
			m.checkAbort()
			self.flushAll()
			if m.pending.Load() == 0 {
				break
			}
			waitABit()
		}
		m.checkAbort()
		vote := procVote{Sent: pt.sent.Load(), Arrived: pt.arrived.Load()}
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(&vote); err != nil {
			panic(fmt.Sprintf("runtime: encoding quiescence vote: %v", err))
		}
		got := m.proc.collectiveRound(m, b.Bytes())
		var sent, arrived int64
		for _, pb := range got {
			var v procVote
			if err := gob.NewDecoder(bytes.NewReader(pb)).Decode(&v); err != nil {
				panic(fmt.Sprintf("runtime: decoding quiescence vote: %v", err))
			}
			sent += v.Sent
			arrived += v.Arrived
		}
		if sent == arrived && sent == prev {
			return // two matching waves, no traffic in between
		}
		if sent == arrived {
			prev = sent
		} else {
			prev = -1
			waitABit()
		}
	}
}

// procFence is the multi-process Fence: flush, then the quiescence waves
// (which double as the barrier — every wave is a collective round, so no
// rank leaves before global quiescence was jointly observed).
func (l *Location) procFence() {
	l.stats.fences.Add(1)
	l.flushAll()
	l.machine.procQuiesce()
}

// procStatsMsg is one rank's contribution to the end-of-run statistics fold.
type procStatsMsg struct {
	Stats Stats
	Wire  transport.WireStats
}

// procFoldStats gathers every rank's statistic shard and wire counters and
// stores the job-wide sums, so Machine.Stats() after a proc-mode run reports
// the same machine-wide totals an in-process run would.
func (m *Machine) procFoldStats() {
	msg := procStatsMsg{Stats: m.foldShards(), Wire: m.transport.WireStats()}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(&msg); err != nil {
		panic(fmt.Sprintf("runtime: encoding stats fold: %v", err))
	}
	got, err := m.proc.round(b.Bytes())
	if err != nil {
		return // aborted or dead control plane: local stats remain
	}
	var folded Stats
	var wire transport.WireStats
	for _, pb := range got {
		var v procStatsMsg
		if err := gob.NewDecoder(bytes.NewReader(pb)).Decode(&v); err != nil {
			return
		}
		folded = folded.Add(v.Stats)
		wire.Add(v.Wire)
	}
	m.foldedStats = &folded
	m.foldedWire = &wire
}

// procExecuteErr is ExecuteErr for a proc-mode machine: the SPMD body runs
// only for this process's own location, quiescence and statistics fold run
// over the control plane, and a fault anywhere in the job aborts every rank.
func (m *Machine) procExecuteErr(fn func(loc *Location)) *MachineFault {
	p := m.proc
	m.beginRun()
	if err := p.attach(m); err != nil {
		m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err.Error(), remote: true})
		return m.collectFault()
	}
	defer p.detach(m)
	// A fatal fault that arrived between runs (a rank died while we were not
	// executing) applies to this run immediately.
	p.mu.Lock()
	if f := p.fatal; f != nil {
		p.mu.Unlock()
		m.recordFault(&LocationFault{Location: f.Location, Kind: f.Kind, Err: f.Msg, remote: true})
		return m.collectFault()
	}
	p.mu.Unlock()

	m.transport = m.transportFactory(m)
	self := m.locations[p.rank]
	self.startServer()
	if m.stallTimeout > 0 {
		m.startWatchdog(m.stallTimeout)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, unwound := r.(abortSignal); unwound {
				m.setUnwound(self.id)
				return
			}
			m.recordFault(&LocationFault{
				Location: self.id, Kind: FaultBodyPanic, Err: r, Stack: captureStack(),
			})
		}()
		fn(self)
		self.flushAll()
	}()
	m.awaitUnwind(&wg)
	if !m.aborted() {
		// The final quiescence waves run on this goroutine (the SPMD body has
		// returned); an abort mid-wave unwinds as the sentinel.
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, unwound := r.(abortSignal); !unwound {
						panic(r)
					}
				}
			}()
			m.procQuiesce()
		}()
	}
	m.stopWatchdog()
	budget := fullDrainBudget
	if m.aborted() {
		budget = abortDrainBudget
	}
	if err := m.transport.Drain(budget); err != nil {
		m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err})
	}
	if !m.aborted() {
		m.procFoldStats()
	}
	m.lastWireName = m.transport.Name()
	m.lastWireStats = m.transport.WireStats()
	self.stopServer()
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	go func() {
		defer serverWG.Done()
		self.serverWG.Wait()
	}()
	m.awaitUnwind(&serverWG)
	if err := m.transport.Close(); err != nil {
		m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err})
	}
	m.transport = nil
	return m.collectFault()
}

// isProcFactory reports whether f is the ProcTransport factory (the proc
// machine switch: NewMachine attaches the child runtime when its transport
// will be the multi-process one).
func isProcFactory(f TransportFactory) bool {
	return f != nil && reflect.ValueOf(f).Pointer() == reflect.ValueOf(ProcTransport).Pointer()
}

// ProcTransport is the multi-process transport factory: the reliable wire
// protocol over a TCP mesh with one listener per process, with every frame
// self-decoding (an unregistered closure request is a structured transport
// fault — there is no rendezvous table across processes).  It requires the
// process to be a launched child (see ChildMain / cmd/pcflaunch) and the
// machine to have exactly one location per process.
func ProcTransport(m *Machine) Transport {
	p := m.proc
	if p == nil {
		panic("runtime: proc transport outside a launched child (run under cmd/pcflaunch, or NewMachine without the ProcTransport factory)")
	}
	mesh := transport.NewTCPMesh(p.n, p.rank)
	inner := transport.NewReliable(mesh, p.n)
	wt := newWireTransport(m, inner)
	t := &procTransport{wireTransport: wt, p: p}
	wt.arrived = func(src, n int) {
		t.arrived.Add(int64(n))
		m.addPending(src, int64(n))
	}
	// Exchange data-plane addresses: every rank has bound its listener by
	// Start above, so after this round every rank can dial every other.
	addrs, err := p.round([]byte(mesh.Addr()))
	if err != nil {
		wt.Close()
		panic(fmt.Sprintf("runtime: rank %d exchanging data-plane addresses: %v", p.rank, err))
	}
	table := make([]string, len(addrs))
	for i, a := range addrs {
		table[i] = string(a)
	}
	mesh.SetPeerAddrs(table)
	return t
}

// procTransport wraps the wire transport with the cross-process pending
// accounting: a request handed to the wire stops being this process's
// responsibility (the local pending count drops) and becomes the receiving
// process's at arrival (the hook in ProcTransport).  The sent/arrived
// counters feed the quiescence waves that account for frames in flight
// between the two.
type procTransport struct {
	*wireTransport
	p       *procRuntime
	sent    atomic.Int64
	arrived atomic.Int64
}

func (t *procTransport) Deliver(src, dst int, batch []*rmiRequest) {
	for _, req := range batch {
		if req.op == 0 {
			// A closure cannot cross a process boundary; fail the run with a
			// diagnosable fault instead of stranding a rendezvous entry the
			// receiving process can never match.
			t.m.recordFault(&LocationFault{
				Location: src, Kind: FaultTransport,
				Err: fmt.Sprintf("unregistered closure request (handle %d, kind 0x%02x) cannot cross a process boundary; register the operation (see runtime.RegisterOp)", req.handle, req.kind),
			})
			t.m.unpendSent(src, int64(len(batch)))
			return
		}
	}
	t.wireTransport.Deliver(src, dst, batch)
	t.sent.Add(int64(len(batch)))
	t.m.unpendSent(src, int64(len(batch)))
}

func (t *procTransport) DeliverOne(src, dst int, req *rmiRequest) {
	t.Deliver(src, dst, []*rmiRequest{req})
}

func (t *procTransport) Name() string { return "proc" }
