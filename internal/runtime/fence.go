package runtime

// Fence is the collective rmi_fence of the paper: every location must call
// it, and when it returns no RMI issued before the fence (including RMIs
// issued transitively by handlers) is still pending anywhere in the machine.
// It is the synchronisation point that turns the relaxed per-element
// completion guarantees of asynchronous container methods into a globally
// consistent state.
func (l *Location) Fence() {
	if l.machine.proc != nil {
		l.procFence()
		return
	}
	l.stats.fences.Add(1)
	// 1. Deliver everything buffered locally.
	l.flushAll()
	// 2. Wait until every location has reached the fence, so no new
	//    top-level requests can be issued.
	l.machine.barrier()
	// 3. One location waits for global quiescence; the others wait on the
	//    closing barrier.  Handler-spawned requests are covered because a
	//    handler increments the pending counter for requests it issues
	//    before its own completion decrements it.
	if l.id == 0 {
		l.machine.waitQuiescent()
	}
	l.machine.barrier()
	if l.id == 0 {
		// A second round catches requests issued by handlers that were
		// still draining when location 0 first observed quiescence is
		// impossible by the accounting argument above, but the barrier
		// pair below is kept so that all locations leave together only
		// after quiescence was observed.
		l.machine.waitQuiescent()
	}
	l.machine.barrier()
}

// OneSidedFence waits until every RMI issued *by this location* before the
// call has been handled (the paper's os_fence).  Unlike Fence it is not
// collective and gives no guarantee about requests issued by other
// locations.
func (l *Location) OneSidedFence() {
	l.flushAll()
	l.machine.waitSrcQuiescent(l.id)
}
