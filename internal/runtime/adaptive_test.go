package runtime

import (
	"fmt"
	"testing"

	"repro/internal/transport"
)

// The adaptive aggregation tests pin the three contracts of the
// occupancy-driven batch sizing: the target GROWS under sustained
// back-to-back traffic (threshold flushes probe upward), COLLAPSES back to 1
// under trickle traffic (explicit flushes observe near-empty buffers), and
// never changes anything observable other than message boundaries — FIFO
// order and machine counters stay deterministic at every batch size, over
// every transport.

// adaptiveConfig returns a config with adaptive aggregation on, seeded at
// seed and bounded by max.
func adaptiveConfig(seed, max int) Config {
	cfg := DefaultConfig()
	cfg.Aggregation = seed
	cfg.AdaptiveAggregation = true
	cfg.AggregationMax = max
	return cfg
}

// TestAdaptiveAggregationGrows drives a long back-to-back burst: every
// threshold flush observes a full buffer and probes upward, so the target
// must climb from the seed to the configured maximum.
func TestAdaptiveAggregationGrows(t *testing.T) {
	const (
		seed  = 2
		max   = 64
		burst = 8000
	)
	var target int
	m := NewMachine(2, adaptiveConfig(seed, max))
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			if got := loc.AggregationTarget(1); got != seed {
				t.Errorf("initial target = %d, want seed %d", got, seed)
			}
			for i := 0; i < burst; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			target = loc.AggregationTarget(1)
			loc.OneSidedFence()
		}
		loc.Barrier()
		if loc.ID() == 1 && obj.get() != burst {
			t.Errorf("sink saw %d rmis, want %d", obj.get(), burst)
		}
	})
	if target != max {
		t.Errorf("target after %d back-to-back sends = %d, want max %d", burst, target, max)
	}
}

// TestAdaptiveAggregationCollapses grows the target with a burst, then
// switches to trickle traffic — one request per fence.  Every explicit flush
// observes occupancy 1, so the EWMA must decay until the target is back to 1
// (latency mode: no request waits behind an unfilled batch).
func TestAdaptiveAggregationCollapses(t *testing.T) {
	const (
		max      = 64
		burst    = 4000
		trickles = 200
	)
	var grown, collapsed int
	m := NewMachine(2, adaptiveConfig(16, max))
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := 0; i < burst; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			grown = loc.AggregationTarget(1)
			loc.OneSidedFence()
			for i := 0; i < trickles; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
				loc.OneSidedFence()
			}
			collapsed = loc.AggregationTarget(1)
		}
		loc.Barrier()
	})
	if grown <= 16 {
		t.Errorf("target after burst = %d, want > seed 16", grown)
	}
	if collapsed != 1 {
		t.Errorf("target after %d single-request fences = %d, want 1", trickles, collapsed)
	}
}

// TestAdaptiveAggregationFIFO checks that re-batching never reorders: with
// the target moving up and down across the run, requests from one source
// must still execute in issue order on the destination.
func TestAdaptiveAggregationFIFO(t *testing.T) {
	const n = 2000
	m := NewMachine(3, adaptiveConfig(1, 32))
	m.Execute(func(loc *Location) {
		obj := &orderObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		src := loc.ID()
		dest := (src + 1) % loc.NumLocations()
		for i := 0; i < n; i++ {
			i := i
			loc.AsyncRMI(dest, h, func(o any, _ *Location) { o.(*orderObj).record(src, i) })
			if i%97 == 0 {
				// Vary the observed occupancy so the target keeps moving
				// while the stream is in flight.
				loc.OneSidedFence()
			}
		}
		loc.Fence()
		got := obj.bySrc[(src+loc.NumLocations()-1)%loc.NumLocations()]
		if len(got) != n {
			t.Fatalf("loc %d executed %d requests, want %d", src, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("loc %d: request %d executed at position %d", src, v, i)
			}
		}
	})
}

// adaptiveWorkloadStats runs a deterministic mixed-phase workload (burst,
// trickle, medium) under adaptive aggregation bounded by max, over the given
// transport, and returns the folded machine counters.  The workload avoids
// races that could shift flush boundaries (no split-phase Get), so the
// counters are a pure function of (workload, max) — transport-independent.
func adaptiveWorkloadStats(t *testing.T, factory TransportFactory, max int) Stats {
	t.Helper()
	cfg := adaptiveConfig(min(16, max), max)
	cfg.Transport = factory
	m := NewMachine(3, cfg)
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		p := loc.NumLocations()
		dest := (loc.ID() + 1) % p
		// Burst phase: target climbs toward max.
		for i := 0; i < 300; i++ {
			loc.AsyncRMISized(dest, h, 16, func(o any, _ *Location) { o.(*counterObj).add(1) })
		}
		// Trickle phase: target decays back toward 1.
		for i := 0; i < 20; i++ {
			loc.AsyncRMI(dest, h, func(o any, _ *Location) { o.(*counterObj).add(10) })
			loc.OneSidedFence()
		}
		// Medium phase with a bulk ship and a blocking checkpoint.
		for i := 0; i < 50; i++ {
			loc.AsyncRMI(dest, h, func(o any, _ *Location) { o.(*counterObj).add(100) })
		}
		loc.AsyncRMIBulk(dest, h, 8, 64, func(o any, _ *Location) { o.(*counterObj).add(1000) })
		if got := SyncRMIT(loc, dest, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() }); got < 0 {
			t.Errorf("sync checkpoint returned %d", got)
		}
		loc.Fence()
		want := int64(300*1 + 20*10 + 50*100 + 1000)
		if got := obj.get(); got != want {
			t.Errorf("loc %d: counter = %d, want %d", loc.ID(), got, want)
		}
	})
	return m.Stats()
}

// TestAdaptiveCrossTransportEquivalence pins the transport-independence
// contract under adaptive aggregation at every bound, including max=1 where
// the target can only ever be 1: the counters — including MessagesSent,
// which depends on every flush boundary the controller picks — must be
// identical over shared memory, the in-process wire and real TCP sockets.
func TestAdaptiveCrossTransportEquivalence(t *testing.T) {
	for _, max := range []int{1, 2, 4, 16, 64} {
		t.Run(fmt.Sprintf("max=%d", max), func(t *testing.T) {
			baseline := adaptiveWorkloadStats(t, InprocTransport, max)
			for _, tc := range []struct {
				name    string
				factory TransportFactory
			}{
				{"wire-inproc", WireTransport},
				{"tcp", TCPLoopbackTransport},
				{"chaos", ChaosTransport(transport.DefaultChaosConfig())},
			} {
				if s := adaptiveWorkloadStats(t, tc.factory, max); s != baseline {
					t.Errorf("%s stats diverge from inproc at max=%d:\n  inproc: %+v\n  %s: %+v",
						tc.name, max, baseline, tc.name, s)
				}
			}
		})
	}
}
