package runtime

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Transport moves RMI request batches between locations.  The runtime layers
// above it (aggregation buffers, fences, quiescence accounting) are
// transport-independent: every machine statistic is counted at logical send
// or execute time, so swapping the transport must not change a deterministic
// experiment's counters — the cross-transport equivalence suite asserts
// exactly that.
//
// Ownership: Deliver and DeliverOne must be done with the batch slice and
// the request pointers being *shared* — they either hand the requests to the
// destination mailbox synchronously or copy the pointers into their own
// storage before returning.  The caller recycles the batch slice (not the
// requests) after Deliver returns.
type Transport interface {
	// Deliver ships a batch of requests from location src to dst's mailbox,
	// preserving batch order per (src, dst) pair.
	Deliver(src, dst int, batch []*rmiRequest)
	// DeliverOne ships a single request (urgent / sync / bulk paths).
	DeliverOne(src, dst int, req *rmiRequest)
	// Flush nudges any transport-internal buffering for traffic issued by
	// src.  The runtime's own aggregation buffers live above the transport;
	// current transports deliver eagerly, so this is a no-op hook.
	Flush(src int)
	// Drain blocks until every delivered batch has reached its destination
	// mailbox (wire transports: all frames acknowledged), or until the
	// budget runs out, in which case it returns an error naming what never
	// arrived.  An aborted run passes a short budget so a dead peer cannot
	// hold the machine hostage.
	Drain(budget time.Duration) error
	// Close releases sockets, queues and goroutines.
	Close() error
	// Name identifies the transport for stats and bench reports.
	Name() string
	// WireStats reports wire-level traffic, all-zero for in-process
	// transports.
	WireStats() transport.WireStats
	// SelfDecoding reports whether this transport executes registered
	// operations from bytes alone (wire transports), so value-returning
	// operations must route completions through tokens and KindReply frames
	// rather than shared-memory futures.  In-process delivery reports false.
	SelfDecoding() bool
}

// TransportFactory builds a transport for one Execute run of a machine.
// The factory is invoked at the start of Machine.Execute and the transport
// is drained and closed at the end, so wire resources (sockets, goroutines)
// only live while SPMD code runs.
type TransportFactory func(m *Machine) Transport

// InprocTransport is the default: requests go straight into the destination
// mailbox on the sender's goroutine, exactly as the runtime behaved before
// the transport seam existed.
func InprocTransport(m *Machine) Transport { return inprocTransport{m: m} }

// WireTransport runs the full wire protocol stack (batch framing plus the
// reliable FIFO exactly-once layer) over the synchronous in-process wire.
// No sockets are involved; this exercises the protocol itself.
func WireTransport(m *Machine) Transport {
	n := m.NumLocations()
	return newWireTransport(m, transport.NewReliable(transport.NewInproc(n), n))
}

// TCPLoopbackTransport runs the wire protocol stack over real kernel TCP
// sockets on 127.0.0.1: every frame — descriptors plus payload padding —
// crosses a socket.
func TCPLoopbackTransport(m *Machine) Transport {
	n := m.NumLocations()
	return newWireTransport(m, transport.NewReliable(transport.NewTCP(n), n))
}

// ChaosTransport returns a factory for the protocol stack over a
// fault-injecting wire: frames are delayed, duplicated and dropped (with
// reconnects) per cfg, and the reliable layer must restore FIFO exactly-once
// delivery.  The underlying wire is the in-process one, so the whole test
// tree can run under chaos quickly.
func ChaosTransport(cfg transport.ChaosConfig) TransportFactory {
	return func(m *Machine) Transport {
		n := m.NumLocations()
		chaos := transport.NewChaos(transport.NewInproc(n), cfg)
		return newWireTransport(m, transport.NewReliable(chaos, n))
	}
}

// ChaosTCPTransport is ChaosTransport over the TCP loopback wire.
func ChaosTCPTransport(cfg transport.ChaosConfig) TransportFactory {
	return func(m *Machine) Transport {
		n := m.NumLocations()
		chaos := transport.NewChaos(transport.NewTCP(n), cfg)
		return newWireTransport(m, transport.NewReliable(chaos, n))
	}
}

// TransportFromEnv resolves the transport selected by the PCF_TRANSPORT
// environment variable (inproc, wire, tcp, chaos, chaos-tcp; empty or unset
// means inproc), so CI can run the entire test tree over any transport
// without code changes.  PCF_CHAOS_SEED optionally reseeds the chaos
// schedule.  Unknown names panic: a typo silently falling back to inproc
// would run the wrong suite.
func TransportFromEnv() TransportFactory {
	name := os.Getenv("PCF_TRANSPORT")
	switch name {
	case "", "inproc":
		return InprocTransport
	case "wire":
		return WireTransport
	case "tcp":
		return TCPLoopbackTransport
	case "proc":
		return ProcTransport
	case "chaos", "chaos-tcp":
		cfg := transport.DefaultChaosConfig()
		if s := os.Getenv("PCF_CHAOS_SEED"); s != "" {
			seed, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				panic(fmt.Sprintf("runtime: bad PCF_CHAOS_SEED %q: %v", s, err))
			}
			cfg.Seed = seed
		}
		if name == "chaos-tcp" {
			return ChaosTCPTransport(cfg)
		}
		return ChaosTransport(cfg)
	default:
		panic(fmt.Sprintf("runtime: unknown PCF_TRANSPORT %q (want inproc, wire, tcp, proc, chaos or chaos-tcp)", name))
	}
}

// inprocTransport delivers synchronously through shared memory.
type inprocTransport struct{ m *Machine }

func (t inprocTransport) Deliver(src, dst int, batch []*rmiRequest) {
	t.m.locations[dst].inbox.pushAll(batch)
}

func (t inprocTransport) DeliverOne(src, dst int, req *rmiRequest) {
	t.m.locations[dst].inbox.push(req)
}

func (t inprocTransport) Flush(int)                      {}
func (t inprocTransport) Drain(time.Duration) error      { return nil }
func (t inprocTransport) Close() error                   { return nil }
func (t inprocTransport) Name() string                   { return "inproc" }
func (t inprocTransport) WireStats() transport.WireStats { return transport.WireStats{} }
func (t inprocTransport) SelfDecoding() bool             { return false }

// wireTransport adapts the runtime's requests to the frame wire.
//
// A batch whose requests are all registered operations (op != 0) is
// self-decoding: each argument is encoded with its registry codec into the
// frame, the requests are recycled on the sender, and the receive callback
// reconstructs and executes the batch from bytes alone — the mode a
// multi-process wire requires.
//
// A batch containing an unregistered closure request falls back to the
// rendezvous: descriptors and payload padding cross the wire while the
// closures wait in the sender-side table keyed by (src, dst, seq), and the
// receive callback matches the decoded frame back to its batch.  Fallback
// batches count each closure request in WireStats.RendezvousFallbacks.
type wireTransport struct {
	m    *Machine
	wire transport.Wire

	// pairs serialises senders per (src, dst) pair: the sequence number is
	// assigned and the frame handed to the wire under the pair's lock, so
	// the adapter's batch order matches the reliable layer's frame order.
	pairs []wirePairSend

	// recvs asserts in-order arrival per pair (the reliable layer's
	// guarantee) and serialises mailbox pushes for a pair.
	recvs []wirePairRecv

	// pending is the rendezvous table of in-flight closure batches.
	pendMu  sync.Mutex
	pending map[wireKey][]*rmiRequest

	// fallbacks counts requests that crossed as bare descriptors because
	// their operation was an unregistered closure.
	fallbacks atomic.Int64

	// arrived, when non-nil, observes every received batch just before it is
	// pushed to the destination mailbox (src is the sending location, n the
	// request count).  The multi-process transport uses it to re-establish
	// the pending accounting the sending process gave up at send time.
	arrived func(src, n int)
}

type wirePairSend struct {
	mu   sync.Mutex
	next uint64
}

type wirePairRecv struct {
	mu       sync.Mutex
	expected uint64
}

type wireKey struct {
	src, dst int
	seq      uint64
}

func newWireTransport(m *Machine, wire transport.Wire) *wireTransport {
	n := m.NumLocations()
	t := &wireTransport{
		m:       m,
		wire:    wire,
		pairs:   make([]wirePairSend, n*n),
		recvs:   make([]wirePairRecv, n*n),
		pending: make(map[wireKey][]*rmiRequest),
	}
	// Asynchronous wire failures (dial exhaustion, peer resets) become
	// machine-level transport faults instead of panics on wire goroutines.
	if es, ok := wire.(transport.ErrorSink); ok {
		es.OnWireError(func(err error) {
			m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err})
		})
	}
	if err := wire.Start(t.onFrame); err != nil {
		panic(fmt.Sprintf("runtime: starting %s wire: %v", wire.Name(), err))
	}
	return t
}

func (t *wireTransport) pair(src, dst int) int { return src*t.m.NumLocations() + dst }

func (t *wireTransport) Deliver(src, dst int, batch []*rmiRequest) {
	selfDecoding := true
	for _, req := range batch {
		if req.op == 0 {
			selfDecoding = false
			t.fallbacks.Add(1)
		}
	}

	descs := make([]transport.RequestDescriptor, len(batch))
	payload := 0
	var enc *transport.Buffer
	if selfDecoding {
		enc = transport.NewBuffer()
	}
	for i, req := range batch {
		descs[i] = transport.RequestDescriptor{
			Handle: int32(req.handle),
			Kind:   req.kind,
			Bytes:  uint32(req.bytes),
		}
		payload += req.bytes
		if !selfDecoding {
			continue
		}
		e := opByID(req.op)
		descs[i].Op = uint64(req.op)
		// Reset to nil (not a truncation): Bytes aliases the buffer, so each
		// argument must grow its own backing array to survive the loop.
		enc.Reset(nil)
		if req.kind == transport.KindReply {
			descs[i].Token = req.token
			e.encodeRet(enc, req.arg)
		} else {
			e.encode(enc, req.arg)
		}
		descs[i].Arg = enc.Bytes()
	}

	var held []*rmiRequest
	if !selfDecoding {
		// Copy the requests out: the caller recycles the batch slice, and
		// the closures must survive until the frame arrives.
		held = make([]*rmiRequest, len(batch))
		copy(held, batch)
	}

	p := &t.pairs[t.pair(src, dst)]
	p.mu.Lock()
	seq := p.next
	p.next++
	if !selfDecoding {
		t.pendMu.Lock()
		t.pending[wireKey{src, dst, seq}] = held
		t.pendMu.Unlock()
	}
	frame := transport.EncodeBatch(transport.BatchHeader{
		Src: src, Dst: dst, Seq: seq, PayloadBytes: payload,
	}, descs)
	// The frame is handed to the wire while the pair lock is held so that
	// concurrent senders from the same location cannot invert the sequence
	// order the reliable layer sees.
	t.wire.Send(src, dst, frame)
	p.mu.Unlock()

	if selfDecoding {
		// The frame carries everything; recycle the requests (and their
		// pooled arguments) on the sender.
		for _, req := range batch {
			if req.kind != transport.KindReply {
				if e := opByID(req.op); e.release != nil {
					e.release(req.arg)
				}
			}
			putRequest(req)
		}
	}
}

func (t *wireTransport) DeliverOne(src, dst int, req *rmiRequest) {
	t.Deliver(src, dst, []*rmiRequest{req})
}

// onFrame is the wire's deliver callback: it matches the decoded header back
// to the closure batch and hands the requests to the destination mailbox.
// The reliable layer guarantees per-pair FIFO exactly-once delivery; the
// expected-sequence check turns a violation into a transport fault instead
// of a reordered execution.  The callback runs on wire goroutines, so any
// panic here is contained into a machine abort rather than killing the
// process.
func (t *wireTransport) onFrame(src, dst int, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			t.m.recordFault(&LocationFault{
				Location: -1, Kind: FaultTransport, Err: r, Stack: captureStack(),
			})
		}
	}()
	hdr, descs, err := transport.DecodeBatch(frame)
	if err != nil {
		panic(fmt.Sprintf("runtime: wire delivered corrupt batch %d->%d: %v", src, dst, err))
	}
	if hdr.Src != src || hdr.Dst != dst {
		panic(fmt.Sprintf("runtime: wire frame header names pair %d->%d but travelled %d->%d", hdr.Src, hdr.Dst, src, dst))
	}

	selfDecoding := true
	for _, d := range descs {
		if d.Op == 0 {
			selfDecoding = false
			break
		}
	}
	if selfDecoding {
		// Reconstruct the batch from bytes alone: look up each operation,
		// decode its argument and rebuild the request — no sender state.
		held := make([]*rmiRequest, len(descs))
		for i, d := range descs {
			e := opByID(OpID(d.Op))
			b := transport.NewReader(d.Arg)
			req := getRequest()
			*req = rmiRequest{
				src:    hdr.Src,
				handle: Handle(d.Handle),
				kind:   d.Kind,
				op:     OpID(d.Op),
				bytes:  int(d.Bytes),
			}
			if d.Kind == transport.KindReply {
				req.token = d.Token
				req.arg = e.decodeRet(b)
			} else {
				req.argFn = e.exec
				req.arg = e.decode(b)
			}
			if err := b.Err(); err != nil {
				panic(fmt.Sprintf("runtime: frame %d->%d seq %d: decoding argument of op %q: %v", src, dst, hdr.Seq, e.name, err))
			}
			// The artificial latency is a deterministic function of the pair,
			// so the receiver recomputes exactly what the sender would have
			// stamped.
			if t.m.cfg.RemoteDelay != nil {
				req.delay = t.m.cfg.RemoteDelay(hdr.Src, hdr.Dst)
			}
			held[i] = req
		}
		r := &t.recvs[t.pair(src, dst)]
		r.mu.Lock()
		if hdr.Seq != r.expected {
			r.mu.Unlock()
			panic(fmt.Sprintf("runtime: wire delivered frame %d->%d seq %d, expected %d (FIFO violated below the reliable layer?)", src, dst, hdr.Seq, r.expected))
		}
		r.expected++
		if t.arrived != nil {
			t.arrived(src, len(held))
		}
		t.m.locations[dst].inbox.pushAll(held)
		r.mu.Unlock()
		return
	}

	key := wireKey{hdr.Src, hdr.Dst, hdr.Seq}
	t.pendMu.Lock()
	held, ok := t.pending[key]
	delete(t.pending, key)
	t.pendMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("runtime: no rendezvous batch for frame %d->%d seq %d (duplicate delivery?)", src, dst, hdr.Seq))
	}
	if len(descs) != len(held) {
		panic(fmt.Sprintf("runtime: frame %d->%d seq %d carries %d descriptors for a batch of %d requests", src, dst, hdr.Seq, len(descs), len(held)))
	}
	for i, d := range descs {
		if Handle(d.Handle) != held[i].handle || d.Kind != held[i].kind {
			panic(fmt.Sprintf("runtime: frame %d->%d seq %d descriptor %d does not match its request", src, dst, hdr.Seq, i))
		}
	}

	r := &t.recvs[t.pair(src, dst)]
	r.mu.Lock()
	if hdr.Seq != r.expected {
		r.mu.Unlock()
		panic(fmt.Sprintf("runtime: wire delivered frame %d->%d seq %d, expected %d (FIFO violated below the reliable layer?)", src, dst, hdr.Seq, r.expected))
	}
	r.expected++
	if t.arrived != nil {
		t.arrived(src, len(held))
	}
	// Push while holding the pair's receive lock: delivery callbacks for a
	// pair are already serialised by the reliable layer, and the lock keeps
	// that true even if a future wire grows concurrent delivery.
	t.m.locations[dst].inbox.pushAll(held)
	r.mu.Unlock()
}

func (t *wireTransport) Flush(int) {}

func (t *wireTransport) Drain(budget time.Duration) error {
	if td, ok := t.wire.(transport.TimedDrainer); ok {
		if err := td.DrainErr(budget); err != nil {
			return err
		}
	} else {
		t.wire.Drain()
	}
	t.pendMu.Lock()
	keys := make([]wireKey, 0, len(t.pending))
	for k := range t.pending {
		keys = append(keys, k)
	}
	t.pendMu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	// Name every missing rendezvous pair so a chaos-run failure is
	// diagnosable from the message alone.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].seq < keys[j].seq
	})
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d->%d seq %d", k.src, k.dst, k.seq)
	}
	return fmt.Errorf("runtime: wire drained but %d rendezvous batches never arrived: %s", len(keys), b.String())
}

func (t *wireTransport) Close() error {
	if err := t.wire.Close(); err != nil {
		return fmt.Errorf("runtime: closing %s wire: %w", t.wire.Name(), err)
	}
	return nil
}

func (t *wireTransport) Name() string { return t.wire.Name() }

func (t *wireTransport) SelfDecoding() bool { return true }

func (t *wireTransport) WireStats() transport.WireStats {
	var s transport.WireStats
	if ss, ok := t.wire.(transport.StatsSource); ok {
		s = ss.WireStats()
	}
	s.RendezvousFallbacks += t.fallbacks.Load()
	return s
}
