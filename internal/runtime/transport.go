package runtime

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/transport"
)

// Transport moves RMI request batches between locations.  The runtime layers
// above it (aggregation buffers, fences, quiescence accounting) are
// transport-independent: every machine statistic is counted at logical send
// or execute time, so swapping the transport must not change a deterministic
// experiment's counters — the cross-transport equivalence suite asserts
// exactly that.
//
// Ownership: Deliver and DeliverOne must be done with the batch slice and
// the request pointers being *shared* — they either hand the requests to the
// destination mailbox synchronously or copy the pointers into their own
// storage before returning.  The caller recycles the batch slice (not the
// requests) after Deliver returns.
type Transport interface {
	// Deliver ships a batch of requests from location src to dst's mailbox,
	// preserving batch order per (src, dst) pair.
	Deliver(src, dst int, batch []*rmiRequest)
	// DeliverOne ships a single request (urgent / sync / bulk paths).
	DeliverOne(src, dst int, req *rmiRequest)
	// Flush nudges any transport-internal buffering for traffic issued by
	// src.  The runtime's own aggregation buffers live above the transport;
	// current transports deliver eagerly, so this is a no-op hook.
	Flush(src int)
	// Drain blocks until every delivered batch has reached its destination
	// mailbox (wire transports: all frames acknowledged), or until the
	// budget runs out, in which case it returns an error naming what never
	// arrived.  An aborted run passes a short budget so a dead peer cannot
	// hold the machine hostage.
	Drain(budget time.Duration) error
	// Close releases sockets, queues and goroutines.
	Close() error
	// Name identifies the transport for stats and bench reports.
	Name() string
	// WireStats reports wire-level traffic, all-zero for in-process
	// transports.
	WireStats() transport.WireStats
}

// TransportFactory builds a transport for one Execute run of a machine.
// The factory is invoked at the start of Machine.Execute and the transport
// is drained and closed at the end, so wire resources (sockets, goroutines)
// only live while SPMD code runs.
type TransportFactory func(m *Machine) Transport

// InprocTransport is the default: requests go straight into the destination
// mailbox on the sender's goroutine, exactly as the runtime behaved before
// the transport seam existed.
func InprocTransport(m *Machine) Transport { return inprocTransport{m: m} }

// WireTransport runs the full wire protocol stack (batch framing plus the
// reliable FIFO exactly-once layer) over the synchronous in-process wire.
// No sockets are involved; this exercises the protocol itself.
func WireTransport(m *Machine) Transport {
	n := m.NumLocations()
	return newWireTransport(m, transport.NewReliable(transport.NewInproc(n), n))
}

// TCPLoopbackTransport runs the wire protocol stack over real kernel TCP
// sockets on 127.0.0.1: every frame — descriptors plus payload padding —
// crosses a socket.
func TCPLoopbackTransport(m *Machine) Transport {
	n := m.NumLocations()
	return newWireTransport(m, transport.NewReliable(transport.NewTCP(n), n))
}

// ChaosTransport returns a factory for the protocol stack over a
// fault-injecting wire: frames are delayed, duplicated and dropped (with
// reconnects) per cfg, and the reliable layer must restore FIFO exactly-once
// delivery.  The underlying wire is the in-process one, so the whole test
// tree can run under chaos quickly.
func ChaosTransport(cfg transport.ChaosConfig) TransportFactory {
	return func(m *Machine) Transport {
		n := m.NumLocations()
		chaos := transport.NewChaos(transport.NewInproc(n), cfg)
		return newWireTransport(m, transport.NewReliable(chaos, n))
	}
}

// ChaosTCPTransport is ChaosTransport over the TCP loopback wire.
func ChaosTCPTransport(cfg transport.ChaosConfig) TransportFactory {
	return func(m *Machine) Transport {
		n := m.NumLocations()
		chaos := transport.NewChaos(transport.NewTCP(n), cfg)
		return newWireTransport(m, transport.NewReliable(chaos, n))
	}
}

// TransportFromEnv resolves the transport selected by the PCF_TRANSPORT
// environment variable (inproc, wire, tcp, chaos, chaos-tcp; empty or unset
// means inproc), so CI can run the entire test tree over any transport
// without code changes.  PCF_CHAOS_SEED optionally reseeds the chaos
// schedule.  Unknown names panic: a typo silently falling back to inproc
// would run the wrong suite.
func TransportFromEnv() TransportFactory {
	name := os.Getenv("PCF_TRANSPORT")
	switch name {
	case "", "inproc":
		return InprocTransport
	case "wire":
		return WireTransport
	case "tcp":
		return TCPLoopbackTransport
	case "chaos", "chaos-tcp":
		cfg := transport.DefaultChaosConfig()
		if s := os.Getenv("PCF_CHAOS_SEED"); s != "" {
			seed, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				panic(fmt.Sprintf("runtime: bad PCF_CHAOS_SEED %q: %v", s, err))
			}
			cfg.Seed = seed
		}
		if name == "chaos-tcp" {
			return ChaosTCPTransport(cfg)
		}
		return ChaosTransport(cfg)
	default:
		panic(fmt.Sprintf("runtime: unknown PCF_TRANSPORT %q (want inproc, wire, tcp, chaos or chaos-tcp)", name))
	}
}

// inprocTransport delivers synchronously through shared memory.
type inprocTransport struct{ m *Machine }

func (t inprocTransport) Deliver(src, dst int, batch []*rmiRequest) {
	t.m.locations[dst].inbox.pushAll(batch)
}

func (t inprocTransport) DeliverOne(src, dst int, req *rmiRequest) {
	t.m.locations[dst].inbox.push(req)
}

func (t inprocTransport) Flush(int)                      {}
func (t inprocTransport) Drain(time.Duration) error      { return nil }
func (t inprocTransport) Close() error                   { return nil }
func (t inprocTransport) Name() string                   { return "inproc" }
func (t inprocTransport) WireStats() transport.WireStats { return transport.WireStats{} }

// wireTransport adapts the runtime's closure-carrying requests to the frame
// wire via a rendezvous: the descriptors and payload padding of a batch
// cross the wire while the closures wait in the sender-side rendezvous
// table keyed by (src, dst, seq); the receive callback matches the decoded
// frame back to its batch and pushes the requests into the destination
// mailbox.  See transport.BatchHeader for why.
type wireTransport struct {
	m    *Machine
	wire transport.Wire

	// pairs serialises senders per (src, dst) pair: the sequence number is
	// assigned and the frame handed to the wire under the pair's lock, so
	// the adapter's batch order matches the reliable layer's frame order.
	pairs []wirePairSend

	// recvs asserts in-order arrival per pair (the reliable layer's
	// guarantee) and serialises mailbox pushes for a pair.
	recvs []wirePairRecv

	// pending is the rendezvous table of in-flight closure batches.
	pendMu  sync.Mutex
	pending map[wireKey][]*rmiRequest
}

type wirePairSend struct {
	mu   sync.Mutex
	next uint64
}

type wirePairRecv struct {
	mu       sync.Mutex
	expected uint64
}

type wireKey struct {
	src, dst int
	seq      uint64
}

func newWireTransport(m *Machine, wire transport.Wire) *wireTransport {
	n := m.NumLocations()
	t := &wireTransport{
		m:       m,
		wire:    wire,
		pairs:   make([]wirePairSend, n*n),
		recvs:   make([]wirePairRecv, n*n),
		pending: make(map[wireKey][]*rmiRequest),
	}
	// Asynchronous wire failures (dial exhaustion, peer resets) become
	// machine-level transport faults instead of panics on wire goroutines.
	if es, ok := wire.(transport.ErrorSink); ok {
		es.OnWireError(func(err error) {
			m.recordFault(&LocationFault{Location: -1, Kind: FaultTransport, Err: err})
		})
	}
	if err := wire.Start(t.onFrame); err != nil {
		panic(fmt.Sprintf("runtime: starting %s wire: %v", wire.Name(), err))
	}
	return t
}

func (t *wireTransport) pair(src, dst int) int { return src*t.m.NumLocations() + dst }

func (t *wireTransport) Deliver(src, dst int, batch []*rmiRequest) {
	// Copy the requests out: the caller recycles the batch slice, and the
	// closures must survive until the frame arrives.
	held := make([]*rmiRequest, len(batch))
	copy(held, batch)

	descs := make([]transport.RequestDescriptor, len(batch))
	payload := 0
	for i, req := range batch {
		descs[i] = transport.RequestDescriptor{
			Handle: int32(req.handle),
			Kind:   req.kind,
			Bytes:  uint32(req.bytes),
		}
		payload += req.bytes
	}

	p := &t.pairs[t.pair(src, dst)]
	p.mu.Lock()
	seq := p.next
	p.next++
	t.pendMu.Lock()
	t.pending[wireKey{src, dst, seq}] = held
	t.pendMu.Unlock()
	frame := transport.EncodeBatch(transport.BatchHeader{
		Src: src, Dst: dst, Seq: seq, PayloadBytes: payload,
	}, descs)
	// The frame is handed to the wire while the pair lock is held so that
	// concurrent senders from the same location cannot invert the sequence
	// order the reliable layer sees.
	t.wire.Send(src, dst, frame)
	p.mu.Unlock()
}

func (t *wireTransport) DeliverOne(src, dst int, req *rmiRequest) {
	t.Deliver(src, dst, []*rmiRequest{req})
}

// onFrame is the wire's deliver callback: it matches the decoded header back
// to the closure batch and hands the requests to the destination mailbox.
// The reliable layer guarantees per-pair FIFO exactly-once delivery; the
// expected-sequence check turns a violation into a transport fault instead
// of a reordered execution.  The callback runs on wire goroutines, so any
// panic here is contained into a machine abort rather than killing the
// process.
func (t *wireTransport) onFrame(src, dst int, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			t.m.recordFault(&LocationFault{
				Location: -1, Kind: FaultTransport, Err: r, Stack: captureStack(),
			})
		}
	}()
	hdr, descs, err := transport.DecodeBatch(frame)
	if err != nil {
		panic(fmt.Sprintf("runtime: wire delivered corrupt batch %d->%d: %v", src, dst, err))
	}
	if hdr.Src != src || hdr.Dst != dst {
		panic(fmt.Sprintf("runtime: wire frame header names pair %d->%d but travelled %d->%d", hdr.Src, hdr.Dst, src, dst))
	}

	key := wireKey{hdr.Src, hdr.Dst, hdr.Seq}
	t.pendMu.Lock()
	held, ok := t.pending[key]
	delete(t.pending, key)
	t.pendMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("runtime: no rendezvous batch for frame %d->%d seq %d (duplicate delivery?)", src, dst, hdr.Seq))
	}
	if len(descs) != len(held) {
		panic(fmt.Sprintf("runtime: frame %d->%d seq %d carries %d descriptors for a batch of %d requests", src, dst, hdr.Seq, len(descs), len(held)))
	}
	for i, d := range descs {
		if Handle(d.Handle) != held[i].handle || d.Kind != held[i].kind {
			panic(fmt.Sprintf("runtime: frame %d->%d seq %d descriptor %d does not match its request", src, dst, hdr.Seq, i))
		}
	}

	r := &t.recvs[t.pair(src, dst)]
	r.mu.Lock()
	if hdr.Seq != r.expected {
		r.mu.Unlock()
		panic(fmt.Sprintf("runtime: wire delivered frame %d->%d seq %d, expected %d (FIFO violated below the reliable layer?)", src, dst, hdr.Seq, r.expected))
	}
	r.expected++
	// Push while holding the pair's receive lock: delivery callbacks for a
	// pair are already serialised by the reliable layer, and the lock keeps
	// that true even if a future wire grows concurrent delivery.
	t.m.locations[dst].inbox.pushAll(held)
	r.mu.Unlock()
}

func (t *wireTransport) Flush(int) {}

func (t *wireTransport) Drain(budget time.Duration) error {
	if td, ok := t.wire.(transport.TimedDrainer); ok {
		if err := td.DrainErr(budget); err != nil {
			return err
		}
	} else {
		t.wire.Drain()
	}
	t.pendMu.Lock()
	keys := make([]wireKey, 0, len(t.pending))
	for k := range t.pending {
		keys = append(keys, k)
	}
	t.pendMu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	// Name every missing rendezvous pair so a chaos-run failure is
	// diagnosable from the message alone.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].seq < keys[j].seq
	})
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d->%d seq %d", k.src, k.dst, k.seq)
	}
	return fmt.Errorf("runtime: wire drained but %d rendezvous batches never arrived: %s", len(keys), b.String())
}

func (t *wireTransport) Close() error {
	if err := t.wire.Close(); err != nil {
		return fmt.Errorf("runtime: closing %s wire: %w", t.wire.Name(), err)
	}
	return nil
}

func (t *wireTransport) Name() string { return t.wire.Name() }

func (t *wireTransport) WireStats() transport.WireStats {
	if s, ok := t.wire.(transport.StatsSource); ok {
		return s.WireStats()
	}
	return transport.WireStats{}
}
