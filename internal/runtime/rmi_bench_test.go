package runtime

import (
	"sync/atomic"
	"testing"
)

// The micro-benchmarks pin the per-operation cost of the RMI hot path: one
// driving location issues requests to a neighbour while the rest of the
// machine serves.  They are run with -benchmem in the bench-time CI job, so
// allocs/op growth on the send path is visible in every PR (ns/op is
// advisory — CI machines differ — but allocs/op is deterministic).
//
// The timed region includes the final fence: what is measured is the full
// cost of issuing b.N requests AND having every handler execute, i.e.
// sustained throughput, not just the enqueue latency.

// benchSink is the registered p_object the benchmark requests target.
type benchSink struct {
	hits atomic.Int64
}

// benchDrive builds a 2-location machine, registers a benchSink on every
// location and runs body on location 0 bracketed by barrier and fence.
func benchDrive(b *testing.B, cfg Config, body func(loc *Location, h Handle)) {
	b.Helper()
	m := NewMachine(2, cfg)
	m.Execute(func(loc *Location) {
		h := loc.RegisterObject(&benchSink{})
		loc.Barrier()
		if loc.ID() == 0 {
			body(loc, h)
			// One-sided: only location 0 is past the issuing loop, so the
			// collective Fence would deadlock here.
			loc.OneSidedFence()
		}
		loc.Barrier()
	})
}

// bump is a static handler: it captures nothing, so the request side pays
// only for what the runtime itself allocates.
func bump(obj any, _ *Location) { obj.(*benchSink).hits.Add(1) }

// bumpArg is the argument-carrying twin of bump.
func bumpArg(obj any, _ *Location, arg any) { obj.(*benchSink).hits.Add(arg.(int64)) }

// BenchmarkAsyncRMI measures the aggregated asynchronous path with a
// CAPTURING closure per request — the pre-optimisation container idiom.
func BenchmarkAsyncRMI(b *testing.B) {
	benchDrive(b, DefaultConfig(), func(loc *Location, h Handle) {
		var v int64 = 1
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loc.AsyncRMI(1, h, func(obj any, _ *Location) { obj.(*benchSink).hits.Add(v) })
		}
	})
}

// BenchmarkAsyncRMIArg measures the same path through the argument-carrying
// variant: a static handler plus an explicit argument, no closure.
func BenchmarkAsyncRMIArg(b *testing.B) {
	benchDrive(b, DefaultConfig(), func(loc *Location, h Handle) {
		arg := any(int64(1)) // boxed once; per-op boxing is the caller's choice
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loc.AsyncRMIArg(1, h, 0, bumpArg, arg)
		}
	})
}

// BenchmarkSyncRMI measures the blocking round trip: request, handler,
// response channel, reply accounting.
func BenchmarkSyncRMI(b *testing.B) {
	benchDrive(b, DefaultConfig(), func(loc *Location, h Handle) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = loc.SyncRMI(1, h, func(obj any, _ *Location) any {
				return obj.(*benchSink).hits.Add(1)
			})
		}
	})
}

// BenchmarkSplitRMI measures the split-phase issue + Get round trip.
func BenchmarkSplitRMI(b *testing.B) {
	benchDrive(b, DefaultConfig(), func(loc *Location, h Handle) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fut := loc.SplitRMI(1, h, func(obj any, _ *Location) any {
				return obj.(*benchSink).hits.Add(1)
			})
			_ = fut.Get()
		}
	})
}

// BenchmarkBulkFlush measures the per-destination bulk ship: one sized bulk
// request standing for a whole element group (the flush path every container
// SetBulk/GetBulk rides).  allocs/op here is allocs per DESTINATION flush.
func BenchmarkBulkFlush(b *testing.B) {
	benchDrive(b, DefaultConfig(), func(loc *Location, h Handle) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loc.AsyncRMIBulk(1, h, 1024, 8192, bump)
		}
	})
}

// BenchmarkBulkFlushArg is BenchmarkBulkFlush through the argument-carrying
// variant used by the core bulk skeleton after the closure-elimination work.
func BenchmarkBulkFlushArg(b *testing.B) {
	benchDrive(b, DefaultConfig(), func(loc *Location, h Handle) {
		arg := any(int64(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loc.AsyncRMIBulkArg(1, h, 1024, 8192, bumpArg, arg)
		}
	})
}
