package runtime

import "time"

// waitABit parks the calling goroutine briefly.  It is used by busy-wait
// loops (executor idle polling) so that RMI server goroutines get scheduled.
func waitABit() {
	time.Sleep(20 * time.Microsecond)
}
