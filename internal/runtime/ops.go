package runtime

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/transport"
)

// This file implements the operation registry: the piece that makes an RMI
// request *self-decoding*.  A registered operation binds a stable op ID to a
// static handler plus a Codec-encoded argument type; a request issued through
// the Op RMI variants carries its op ID into the wire descriptor, and the
// receive path of a wire transport reconstructs and executes the request from
// bytes alone — no sender-side rendezvous state, so the request can cross a
// process boundary.  Requests that still carry Go closures take the
// compatibility path through the rendezvous table (single-process wires
// only), counted by WireStats.RendezvousFallbacks.

// OpID is the stable identity of a registered operation: the FNV-64a hash of
// its registration name.  Hashing the name (rather than numbering
// registrations) makes the ID independent of registration order, so
// cooperating processes agree on IDs without negotiation.  Zero is reserved
// for "unregistered closure".
type OpID uint64

// opIDFor hashes a registration name to its op ID (FNV-64a).
func opIDFor(name string) OpID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	if h == 0 {
		h = 1 // preserve the "zero means closure" invariant
	}
	return OpID(h)
}

// opEntry is the registered implementation of one operation, type-erased so
// the wire receive path can reconstruct any request without generics.
type opEntry struct {
	name string
	// exec runs the operation at the destination.  It owns arg: handlers of
	// pooled argument types release them after applying the operation.
	exec func(obj any, loc *Location, arg any)
	// encode/decode marshal the argument.  decode allocates (or takes from a
	// pool) a fresh argument, so the decoded request owns it like a local one.
	encode func(b *transport.Buffer, arg any)
	decode func(b *transport.Buffer) any
	// release returns an encoded-and-dropped argument to its pool (sender
	// side of a self-decoding batch).  May be nil.
	release func(arg any)
	// encodeRet/decodeRet marshal the operation's reply value (KindReply
	// frames).  Nil for operations that return nothing.
	encodeRet func(b *transport.Buffer, v any)
	decodeRet func(b *transport.Buffer) any
}

var (
	opMu      sync.RWMutex
	opsByID   = map[OpID]*opEntry{}
	opsByName = map[string]OpID{}
)

func registerOpEntry(name string, e *opEntry) OpID {
	if name == "" {
		panic("runtime: operation with empty name")
	}
	id := opIDFor(name)
	e.name = name
	opMu.Lock()
	defer opMu.Unlock()
	if _, dup := opsByName[name]; dup {
		panic(fmt.Sprintf("runtime: operation %q registered twice", name))
	}
	if prev, collide := opsByID[id]; collide {
		panic(fmt.Sprintf("runtime: operation id collision: %q and %q both hash to %#x", prev.name, name, uint64(id)))
	}
	opsByName[name] = id
	opsByID[id] = e
	return id
}

// opByID resolves an op ID to its entry, panicking on an unknown ID (a frame
// naming an operation this process never registered is unexecutable).
func opByID(id OpID) *opEntry {
	opMu.RLock()
	e := opsByID[id]
	opMu.RUnlock()
	if e == nil {
		panic(fmt.Sprintf("runtime: no operation registered under id %#x", uint64(id)))
	}
	return e
}

// RegisterOp registers a void operation: a static handler plus the codec of
// its argument type.  The returned OpID is what the Op RMI variants
// (AsyncRMIOpSized, AsyncRMIUrgentOp, AsyncRMIBulkOp) carry into the wire
// descriptor.  release, when non-nil, returns an argument to its pool after
// a self-decoding send encoded and dropped it; handlers release their own
// (decoded or locally delivered) arguments.  Registration names must be
// unique and stable across processes — derive them from codec names, not
// from registration order.  Panics on a duplicate name or an ID collision.
func RegisterOp[A any](name string, argCodec transport.Codec[A], exec func(obj any, loc *Location, arg A), release func(A)) OpID {
	e := &opEntry{
		exec:   func(obj any, loc *Location, arg any) { exec(obj, loc, arg.(A)) },
		encode: func(b *transport.Buffer, arg any) { argCodec.Encode(b, arg.(A)) },
		decode: func(b *transport.Buffer) any { return argCodec.Decode(b) },
	}
	if release != nil {
		e.release = func(arg any) { release(arg.(A)) }
	}
	return registerOpEntry(name, e)
}

// RegisterOpRet registers a value-returning operation.  The handler computes
// the result itself and sends it home with Location.ReplyOp (or completes the
// in-memory future the argument carries, on a non-self-decoding transport);
// retCodec is how the registry marshals that reply on KindReply frames.
func RegisterOpRet[A any, R any](name string, argCodec transport.Codec[A], retCodec transport.Codec[R], exec func(obj any, loc *Location, arg A), release func(A)) OpID {
	e := &opEntry{
		exec:      func(obj any, loc *Location, arg any) { exec(obj, loc, arg.(A)) },
		encode:    func(b *transport.Buffer, arg any) { argCodec.Encode(b, arg.(A)) },
		decode:    func(b *transport.Buffer) any { return argCodec.Decode(b) },
		encodeRet: func(b *transport.Buffer, v any) { retCodec.Encode(b, v.(R)) },
		decodeRet: func(b *transport.Buffer) any { return retCodec.Decode(b) },
	}
	if release != nil {
		e.release = func(arg any) { release(arg.(A)) }
	}
	return registerOpEntry(name, e)
}

// RegisteredOps returns the names of all registered operations, sorted (for
// tests and diagnostics).
func RegisteredOps() []string {
	opMu.RLock()
	defer opMu.RUnlock()
	out := make([]string, 0, len(opsByName))
	for name := range opsByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OpIDOf reports the id registered under name.
func OpIDOf(name string) (OpID, bool) {
	opMu.RLock()
	defer opMu.RUnlock()
	id, ok := opsByName[name]
	return id, ok
}

// Completion tokens.
//
// A value-returning operation on a self-decoding transport cannot carry its
// *Future across the wire; instead the origin registers a completion callback
// under a per-location token, ships the token inside the encoded argument,
// and the destination answers with a KindReply frame naming the token.  The
// location server routes the reply to the callback (see Location.execute).

// RegisterToken installs a completion callback and returns its (nonzero)
// token.  The callback runs on the location's server goroutine once per
// matching reply; returning true removes the registration (one-shot
// completions), returning false keeps it live for further replies (bulk
// gathers with one reply per destination group) until UnregisterToken.
func (l *Location) RegisterToken(fn func(v any) bool) uint64 {
	l.tokMu.Lock()
	l.tokenSeq++
	tok := l.tokenSeq
	if l.tokens == nil {
		l.tokens = make(map[uint64]func(v any) bool)
	}
	l.tokens[tok] = fn
	l.tokMu.Unlock()
	return tok
}

// UnregisterToken removes a completion callback (no-op if already removed).
func (l *Location) UnregisterToken(tok uint64) {
	l.tokMu.Lock()
	delete(l.tokens, tok)
	l.tokMu.Unlock()
}

// completeToken routes a KindReply value to its registered callback.  A
// missing token is dropped silently: it can only arise from a reply that
// outlived an aborted run's cleanup.
func (l *Location) completeToken(tok uint64, v any) {
	l.tokMu.Lock()
	fn := l.tokens[tok]
	l.tokMu.Unlock()
	if fn == nil {
		return
	}
	if fn(v) {
		l.UnregisterToken(tok)
	}
}

// SelfDecodingTransport reports whether the machine's current transport
// reconstructs registered operations from bytes (so completions must travel
// as tokens and KindReply frames, not shared-memory futures).  Outside an
// Execute run there is no transport and the answer is false.
func (l *Location) SelfDecodingTransport() bool {
	t := l.machine.transport
	return t != nil && t.SelfDecoding()
}

// NewAbortableFuture returns a future wired to this machine's abort channel,
// so a blocked Get unwinds instead of deadlocking when the completion will
// never arrive (e.g. the answering process died).  It deliberately does NOT
// arm the aggregation-flush hook: registered read paths flush eagerly like
// their closure twins, and a wait-triggered flush would change message
// boundaries and break counter identity across transports.
func (l *Location) NewAbortableFuture() *Future {
	fut := NewFuture()
	fut.abort = l.machine.abortCh
	return fut
}

// WaitDone blocks until ch closes.  If the machine aborts first, the wait
// unwinds the calling goroutine (cooperative abort) unless ch closed in the
// same instant.  Framework completion waits (bulk gathers) use it so a fault
// elsewhere cannot strand them.
func (l *Location) WaitDone(ch <-chan struct{}) {
	select {
	case <-ch:
	case <-l.machine.abortCh:
		select {
		case <-ch:
		default:
			panic(abortSignal{})
		}
	}
}
