package runtime

import (
	"testing"

	"repro/internal/transport"
)

// Test operations registered once per process (the registry is global and
// permanent, like the container packages' own registrations).

var rawAddOp = RegisterOp("runtime-test/raw-add", transport.Int64Codec,
	func(obj any, _ *Location, v int64) { obj.(*counterObj).add(v) }, nil)

// rawGetArg carries the origin/token pair a value-returning operation needs
// to answer over a self-decoding transport, plus the object handle so the
// handler can name itself in the reply.
type rawGetArg struct {
	origin int
	token  uint64
	handle int64
}

var rawGetArgCodec = transport.Codec[rawGetArg]{
	Name: "runtime-test/raw-get-args",
	Encode: func(b *transport.Buffer, a rawGetArg) {
		b.PutVarint(int64(a.origin))
		b.PutUvarint(a.token)
		b.PutVarint(a.handle)
	},
	Decode: func(b *transport.Buffer) rawGetArg {
		return rawGetArg{
			origin: int(b.Varint()),
			token:  b.Uvarint(),
			handle: b.Varint(),
		}
	},
}

var rawGetOp OpID

func init() {
	rawGetOp = RegisterOpRet("runtime-test/raw-get", rawGetArgCodec, transport.Int64Codec,
		func(obj any, loc *Location, a rawGetArg) {
			loc.ReplyOp(a.origin, Handle(a.handle), rawGetOp, a.token, obj.(*counterObj).get())
		}, nil)
}

// TestOpRegistryIdentity pins the registry's naming contract: IDs are the
// FNV-64a hash of the registration name (stable across processes and
// registration order), zero is reserved for closures, and lookups agree with
// what registration returned.
func TestOpRegistryIdentity(t *testing.T) {
	if rawAddOp == 0 || rawGetOp == 0 {
		t.Fatal("registered operation got the reserved closure id 0")
	}
	if got := opIDFor("runtime-test/raw-add"); got != rawAddOp {
		t.Errorf("opIDFor = %#x, RegisterOp returned %#x", uint64(got), uint64(rawAddOp))
	}
	if id, ok := OpIDOf("runtime-test/raw-add"); !ok || id != rawAddOp {
		t.Errorf("OpIDOf = (%#x, %v), want (%#x, true)", uint64(id), ok, uint64(rawAddOp))
	}
	if _, ok := OpIDOf("runtime-test/never-registered"); ok {
		t.Error("OpIDOf found an operation that was never registered")
	}
	found := 0
	for _, name := range RegisteredOps() {
		if name == "runtime-test/raw-add" || name == "runtime-test/raw-get" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("RegisteredOps lists %d of the 2 test operations", found)
	}
}

// TestOpRegistryDuplicatePanics pins the fail-fast posture: a second
// registration under an already-taken name (hence an already-taken ID) must
// panic instead of silently rebinding the operation other processes may
// already be decoding.
func TestOpRegistryDuplicatePanics(t *testing.T) {
	RegisterOp("runtime-test/dup", transport.Int64Codec,
		func(any, *Location, int64) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate operation registration did not panic")
		}
	}()
	RegisterOp("runtime-test/dup", transport.Int64Codec,
		func(any, *Location, int64) {}, nil)
}

// TestRawFrameExecutesWithoutSenderState is the self-decoding contract from
// the receiving end: a data frame built by hand — by a "process" that never
// created a request, never touched the rendezvous table — must reconstruct
// and execute the registered operation from its bytes alone.
func TestRawFrameExecutesWithoutSenderState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = WireTransport
	m := NewMachine(2, cfg)
	const fromBytes = int64(41)
	objs := make([]*counterObj, 2)
	fault := m.ExecuteErr(func(loc *Location) {
		obj := &counterObj{}
		objs[loc.ID()] = obj
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			wt := m.transport.(*wireTransport)
			enc := transport.NewBuffer()
			transport.Int64Codec.Encode(enc, fromBytes)
			frame := transport.EncodeBatch(
				transport.BatchHeader{Src: 0, Dst: 1, Seq: 0, PayloadBytes: 0},
				[]transport.RequestDescriptor{{
					Handle: int32(h),
					Kind:   transport.KindAsync,
					Op:     uint64(rawAddOp),
					Arg:    enc.Bytes(),
				}})
			// The receiving side owns the request once it arrives; account it
			// like a real send so quiescence stays balanced.
			m.addPending(0, 1)
			wt.onFrame(0, 1, frame)
			wt.pendMu.Lock()
			pending := len(wt.pending)
			wt.pendMu.Unlock()
			if pending != 0 {
				t.Errorf("hand-built frame left %d rendezvous entries; self-decoding must use none", pending)
			}
		}
		loc.Fence()
	})
	if fault != nil {
		t.Fatalf("run faulted: %v", fault)
	}
	if got := objs[1].get(); got != fromBytes {
		t.Errorf("operation reconstructed from raw bytes added %d, want %d", got, fromBytes)
	}
}

// TestRawReplyFrameCompletesToken covers the other half of the self-decoding
// protocol: a KindReply frame built by hand must decode the reply value with
// the operation's return codec and route it to the origin's registered
// completion token — the only completion channel that exists across
// processes.
func TestRawReplyFrameCompletesToken(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transport = WireTransport
	m := NewMachine(2, cfg)
	var tok uint64
	got := make(chan int64, 1)
	fault := m.ExecuteErr(func(loc *Location) {
		loc.Barrier()
		if loc.ID() == 0 {
			tok = loc.RegisterToken(func(v any) bool {
				got <- v.(int64)
				return true
			})
		}
		loc.Barrier()
		if loc.ID() == 1 {
			wt := m.transport.(*wireTransport)
			enc := transport.NewBuffer()
			transport.Int64Codec.Encode(enc, 1234)
			frame := transport.EncodeBatch(
				transport.BatchHeader{Src: 1, Dst: 0, Seq: 0, PayloadBytes: 0},
				[]transport.RequestDescriptor{{
					Kind:  transport.KindReply,
					Op:    uint64(rawGetOp),
					Token: tok,
					Arg:   enc.Bytes(),
				}})
			m.addPending(1, 1)
			wt.onFrame(1, 0, frame)
		}
		loc.Fence()
	})
	if fault != nil {
		t.Fatalf("run faulted: %v", fault)
	}
	select {
	case v := <-got:
		if v != 1234 {
			t.Errorf("reply token completed with %d, want 1234", v)
		}
	default:
		t.Error("hand-built reply frame never completed the registered token")
	}
}

// TestRegisteredOpsRoundTripOverWire runs the registered request AND reply
// paths end to end over the wire protocol: every cross-location interaction
// is a registered operation, so the run must complete with zero rendezvous
// fallbacks — nothing waited on sender-side state.
func TestRegisteredOpsRoundTripOverWire(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory TransportFactory
	}{
		{"reliable+wire-inproc", WireTransport},
		{"reliable+tcp", TCPLoopbackTransport},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Transport = tc.factory
			m := NewMachine(4, cfg)
			const k = 25
			fault := m.ExecuteErr(func(loc *Location) {
				obj := &counterObj{}
				h := loc.RegisterObject(obj)
				loc.Barrier()
				p := loc.NumLocations()
				for d := 0; d < p; d++ {
					if d == loc.ID() {
						continue
					}
					for i := 0; i < k; i++ {
						loc.AsyncRMIOpSized(d, h, 8, rawAddOp, int64(1))
					}
					loc.AsyncRMIUrgentOp(d, h, rawAddOp, int64(10))
					loc.AsyncRMIBulkOp(d, h, 4, 32, rawAddOp, int64(100))
				}
				loc.Fence()
				want := int64((k + 10 + 100) * (p - 1))
				if got := obj.get(); got != want {
					t.Errorf("loc %d: counter = %d, want %d", loc.ID(), got, want)
				}
				// Value-returning round trip: ask a neighbour for its counter
				// through the registered get, completion by token and reply
				// frame.
				next := (loc.ID() + 1) % p
				fut := loc.NewAbortableFuture()
				tok := loc.RegisterToken(func(v any) bool {
					fut.Complete(v)
					return true
				})
				loc.AsyncRMIUrgentOp(next, h, rawGetOp, rawGetArg{
					origin: loc.ID(), token: tok, handle: int64(h),
				})
				if got := fut.Get().(int64); got != want {
					t.Errorf("loc %d: registered get returned %d, want %d", loc.ID(), got, want)
				}
				loc.Fence()
			})
			if fault != nil {
				t.Fatalf("run faulted: %v", fault)
			}
			if ws := m.WireStats(); ws.RendezvousFallbacks != 0 {
				t.Errorf("registered-only workload took %d rendezvous fallbacks, want 0", ws.RendezvousFallbacks)
			}
		})
	}
}
