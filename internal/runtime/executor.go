package runtime

import (
	"fmt"
	"sync"
)

// TaskID identifies a task within one Executor instance.  Task identifiers
// are global: any location may declare a task that executes on any location
// and may add dependencies between tasks living on different locations.
type TaskID int64

// Task is one unit of work of a pRange: a work function plus the location it
// executes on.  Dependencies are edges of the task dependence graph; a task
// becomes runnable when all its predecessors have completed.
type Task struct {
	ID       TaskID
	Location int
	Work     func(loc *Location)

	succs     []TaskID
	numPred   int
	scheduled bool
}

// Executor is the distributed task-graph executor of the RTS (the paper's
// executor for pRanges).  Each location holds a representative; tasks are
// registered collectively or locally, and Run drives execution to
// completion, delivering completion notifications across locations through
// asynchronous RMIs.
type Executor struct {
	loc    *Location
	handle Handle

	mu      sync.Mutex
	tasks   map[TaskID]*Task
	ready   []TaskID
	pending int            // local tasks not yet completed
	succLoc map[TaskID]int // owning location of successor tasks referenced locally
}

// NewExecutor creates an executor representative on this location.  It must
// be called collectively (SPMD) so that all representatives share a handle.
func NewExecutor(loc *Location) *Executor {
	e := &Executor{loc: loc, tasks: make(map[TaskID]*Task)}
	e.handle = loc.RegisterObject(e)
	return e
}

// AddTask registers a task that will execute on task.Location.  Tasks may be
// added from any location; the descriptor is shipped to the owning location.
// AddTask must be followed by AddDependency calls (if any) before Run.
func (e *Executor) AddTask(id TaskID, where int, work func(loc *Location)) {
	e.loc.AsyncRMI(where, e.handle, func(obj any, loc *Location) {
		ex := obj.(*Executor)
		ex.mu.Lock()
		defer ex.mu.Unlock()
		if _, dup := ex.tasks[id]; dup {
			panic(fmt.Sprintf("runtime: duplicate task %d", id))
		}
		ex.tasks[id] = &Task{ID: id, Location: where, Work: work}
		ex.pending++
	})
}

// AddDependency records that task "to" (owned by location toLoc) cannot run
// before task "from" (owned by fromLoc) has completed.
func (e *Executor) AddDependency(from TaskID, fromLoc int, to TaskID, toLoc int) {
	// Register the successor edge at the predecessor's location and the
	// predecessor count at the successor's location.
	e.loc.AsyncRMI(fromLoc, e.handle, func(obj any, loc *Location) {
		ex := obj.(*Executor)
		ex.mu.Lock()
		defer ex.mu.Unlock()
		t, ok := ex.tasks[from]
		if !ok {
			panic(fmt.Sprintf("runtime: dependency from unknown task %d", from))
		}
		t.succs = append(t.succs, to)
	})
	e.loc.AsyncRMI(toLoc, e.handle, func(obj any, loc *Location) {
		ex := obj.(*Executor)
		ex.mu.Lock()
		defer ex.mu.Unlock()
		t, ok := ex.tasks[to]
		if !ok {
			panic(fmt.Sprintf("runtime: dependency to unknown task %d", to))
		}
		t.numPred++
	})
	// Record where the successor lives so completion can notify it.
	e.loc.AsyncRMI(fromLoc, e.handle, func(obj any, loc *Location) {
		ex := obj.(*Executor)
		ex.mu.Lock()
		defer ex.mu.Unlock()
		if ex.succLoc == nil {
			ex.succLoc = make(map[TaskID]int)
		}
		ex.succLoc[to] = toLoc
	})
}

// Run executes the task graph.  It is collective: every location calls Run
// after all AddTask/AddDependency calls, and Run returns everywhere once all
// tasks in the machine have completed.
func (e *Executor) Run() {
	// Make sure all task registrations have been delivered.
	e.loc.Fence()
	// Seed the ready queue with dependency-free local tasks.  A task may
	// already have been scheduled by a completion notification that
	// arrived between the fence and this point, so the scheduled flag
	// guards against double execution.
	e.mu.Lock()
	for id, t := range e.tasks {
		if t.numPred == 0 && !t.scheduled {
			t.scheduled = true
			e.ready = append(e.ready, id)
		}
	}
	e.mu.Unlock()
	// Drive local execution until all local tasks have run.  Completion
	// notifications arriving from other locations (as RMIs) append to the
	// ready queue concurrently.
	for {
		e.mu.Lock()
		if e.pending == 0 {
			e.mu.Unlock()
			break
		}
		if len(e.ready) == 0 {
			e.mu.Unlock()
			// Nothing runnable yet: let the RMI server make progress.
			// If the machine aborted, the notification we are spinning
			// for may never arrive — unwind instead.
			e.loc.machine.checkAbort()
			e.loc.Machine().yield()
			continue
		}
		id := e.ready[0]
		e.ready = e.ready[1:]
		t := e.tasks[id]
		e.mu.Unlock()

		t.Work(e.loc)

		e.mu.Lock()
		e.pending--
		succs := t.succs
		e.mu.Unlock()
		for _, s := range succs {
			dst := e.successorLocation(s)
			e.loc.AsyncRMI(dst, e.handle, func(obj any, loc *Location) {
				obj.(*Executor).predDone(s)
			})
		}
	}
	// Wait for every location to finish its tasks and for trailing
	// notifications to drain.
	e.loc.Fence()
}

func (e *Executor) successorLocation(id TaskID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.succLoc != nil {
		if d, ok := e.succLoc[id]; ok {
			return d
		}
	}
	// Fall back to a local successor.
	return e.loc.ID()
}

// predDone records that one predecessor of the given local task completed,
// moving the task to the ready queue when its last predecessor finishes.
func (e *Executor) predDone(id TaskID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	if !ok {
		panic(fmt.Sprintf("runtime: completion notification for unknown task %d", id))
	}
	t.numPred--
	if t.numPred <= 0 && !t.scheduled {
		t.scheduled = true
		e.ready = append(e.ready, id)
	}
}

// Reset clears all tasks so the executor can be reused for another pRange.
// It is collective.
func (e *Executor) Reset() {
	e.loc.Fence()
	e.mu.Lock()
	e.tasks = make(map[TaskID]*Task)
	e.ready = nil
	e.pending = 0
	e.succLoc = nil
	e.mu.Unlock()
	e.loc.Fence()
}

// yield lets other goroutines (in particular RMI servers) make progress
// while a location busy-waits for work.
func (m *Machine) yield() {
	// A short sleep keeps the busy-wait cheap without burning a core.
	waitABit()
}
