package runtime

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
)

// The multi-process tests re-execute this test binary as the launched SPMD
// program: Launch starts N copies of it constrained (via -test.run) to
// TestProcHelper, which branches on PCF_PROC_TEST_MODE.  Everything the
// children must report back travels through files under PCF_PROC_TEST_OUT —
// the children are real separate OS processes and share nothing else with
// the parent test.

const (
	procTestModeEnv = "PCF_PROC_TEST_MODE"
	procTestOutEnv  = "PCF_PROC_TEST_OUT"
)

// procEquivReport is rank 0's summary of a proc-mode run: the job-wide folded
// machine statistics and wire counters.
type procEquivReport struct {
	Stats Stats
	Wire  transport.WireStats
}

// procFaultReport is one survivor's record of the structured fault it
// observed when another rank died.
type procFaultReport struct {
	Rank     int
	Location int
	Kind     FaultKind
	Msg      string
}

func writeTestJSON(t *testing.T, path string, v any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshalling %s: %v", path, err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// procEquivWorkload is the deterministic registered-ops workload the
// equivalence test runs both multi-process (children, proc transport) and
// in-process (parent, inproc transport).  Every cross-location interaction is
// a registered operation, so it is runnable across a process boundary; every
// statistic is counted at logical send/execute time, so the folded counters
// must come out identical in both modes.
func procEquivWorkload(t *testing.T, loc *Location) {
	const k = 30
	obj := &counterObj{}
	h := loc.RegisterObject(obj)
	loc.Barrier()
	p := loc.NumLocations()
	for d := 0; d < p; d++ {
		if d == loc.ID() {
			continue
		}
		for i := 0; i < k; i++ {
			loc.AsyncRMIOpSized(d, h, 16, rawAddOp, int64(1))
		}
		loc.AsyncRMIUrgentOp(d, h, rawAddOp, int64(10))
		loc.AsyncRMIBulkOp(d, h, 8, 64, rawAddOp, int64(100))
	}
	loc.Fence()
	want := int64((k + 10 + 100) * (p - 1))
	if got := obj.get(); got != want {
		t.Errorf("loc %d: counter = %d, want %d", loc.ID(), got, want)
	}
	// Value-returning round trip: registered get from the next rank,
	// completion routed home by token (the only completion channel that can
	// cross a process).
	next := (loc.ID() + 1) % p
	fut := loc.NewAbortableFuture()
	tok := loc.RegisterToken(func(v any) bool {
		fut.Complete(v)
		return true
	})
	loc.AsyncRMIUrgentOp(next, h, rawGetOp, rawGetArg{
		origin: loc.ID(), token: tok, handle: int64(h),
	})
	if got := fut.Get().(int64); got != want {
		t.Errorf("loc %d: registered get returned %d, want %d", loc.ID(), got, want)
	}
	loc.Fence()
}

// TestProcHelper is the child-side entry point of the multi-process tests.
// It runs only inside a process started by Launch (the parent tests skip it)
// and must be the sole test the children execute (-test.run pins it).
func TestProcHelper(t *testing.T) {
	mode := os.Getenv(procTestModeEnv)
	if mode == "" {
		t.Skip("not a launched helper child")
	}
	if !ChildMain() {
		t.Fatalf("%s set but the launcher environment is missing", procTestModeEnv)
	}
	defer ChildDone()
	rank, nprocs, _ := ProcRank()
	outDir := os.Getenv(procTestOutEnv)
	cfg := DefaultConfig()
	cfg.Transport = ProcTransport
	m := NewMachine(nprocs, cfg)

	switch mode {
	case "equivalence":
		if fault := m.ExecuteErr(func(loc *Location) { procEquivWorkload(t, loc) }); fault != nil {
			t.Fatalf("rank %d: run faulted: %v", rank, fault)
		}
		if rank == 0 {
			writeTestJSON(t, filepath.Join(outDir, "stats.json"), procEquivReport{
				Stats: m.Stats(), Wire: m.WireStats(),
			})
		}
	case "kill":
		fault := m.ExecuteErr(func(loc *Location) {
			loc.Barrier()
			if loc.ID() == 1 {
				os.Exit(3) // simulated crash mid-run, after everyone passed the barrier
			}
			loc.Fence() // stalls until the dead rank's fatal abort arrives, then unwinds
		})
		if fault == nil {
			t.Fatalf("rank %d: run completed despite a dead rank", rank)
		}
		writeTestJSON(t, filepath.Join(outDir, fmt.Sprintf("fault-%d.json", rank)), procFaultReport{
			Rank:     rank,
			Location: fault.Cause.Location,
			Kind:     fault.Cause.Kind,
			Msg:      fmt.Sprint(fault.Cause.Err),
		})
	default:
		t.Fatalf("unknown helper mode %q", mode)
	}
}

// launchHelper re-executes the test binary as an n-process job in the given
// helper mode, bounding the whole launch so a supervision regression fails
// the test instead of hanging it.  Child output is captured to a log file and
// dumped on failure.
func launchHelper(t *testing.T, n int, mode, outDir string) error {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("test binary path: %v", err)
	}
	logPath := filepath.Join(outDir, "children.log")
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("creating child log: %v", err)
	}
	defer logf.Close()
	errCh := make(chan error, 1)
	go func() {
		errCh <- Launch(LaunchSpec{
			NProcs: n,
			Prog:   exe,
			Args:   []string{"-test.run=^TestProcHelper$", "-test.count=1"},
			Env: []string{
				procTestModeEnv + "=" + mode,
				procTestOutEnv + "=" + outDir,
			},
			Stdout: logf,
			Stderr: logf,
		})
	}()
	select {
	case err := <-errCh:
		return err
	case <-time.After(120 * time.Second):
		if b, rerr := os.ReadFile(logPath); rerr == nil {
			t.Logf("child output:\n%s", b)
		}
		t.Fatalf("launch of %d %s helpers did not return within 120s", n, mode)
		return nil
	}
}

func dumpChildLog(t *testing.T, outDir string) {
	t.Helper()
	if b, err := os.ReadFile(filepath.Join(outDir, "children.log")); err == nil && len(b) > 0 {
		t.Logf("child output:\n%s", b)
	}
}

// TestProcLaunchStatsEquivalence is the multi-process acceptance test: the
// registered-ops workload runs across real OS processes under the launcher,
// and the job-wide folded statistics must be IDENTICAL to the same workload
// on an in-process machine — the counter-identity invariant extended over
// the process boundary.  It also pins that the proc data plane needed zero
// rendezvous fallbacks: every frame was reconstructed from bytes alone.
func TestProcLaunchStatsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const n = 2
	outDir := t.TempDir()
	if err := launchHelper(t, n, "equivalence", outDir); err != nil {
		dumpChildLog(t, outDir)
		t.Fatalf("launch failed: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(outDir, "stats.json"))
	if err != nil {
		dumpChildLog(t, outDir)
		t.Fatalf("rank 0 reported no stats: %v", err)
	}
	var got procEquivReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("parsing rank 0 stats: %v", err)
	}

	cfg := DefaultConfig()
	cfg.Transport = InprocTransport
	m := NewMachine(n, cfg)
	if fault := m.ExecuteErr(func(loc *Location) { procEquivWorkload(t, loc) }); fault != nil {
		t.Fatalf("inproc baseline faulted: %v", fault)
	}
	if want := m.Stats(); got.Stats != want {
		t.Errorf("multi-process stats diverge from inproc:\n  inproc: %+v\n  proc:   %+v", want, got.Stats)
	}
	if got.Wire.RendezvousFallbacks != 0 {
		t.Errorf("proc run took %d rendezvous fallbacks, want 0 (registered ops only)", got.Wire.RendezvousFallbacks)
	}
	if got.Wire.DataFrames == 0 {
		t.Error("proc run reported zero data frames; the workload never crossed the process boundary")
	}
}

// TestProcLaunchKilledChild pins the supervision contract: a child process
// dying mid-run surfaces as a STRUCTURED MachineFault on every surviving
// rank (transport fault naming the dead rank) and as an error from Launch —
// with no hang anywhere.
func TestProcLaunchKilledChild(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const n = 3
	outDir := t.TempDir()
	err := launchHelper(t, n, "kill", outDir)
	if err == nil {
		dumpChildLog(t, outDir)
		t.Fatal("launch reported success although rank 1 exited mid-run")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("launch error does not name the dead rank: %v", err)
	}
	for _, rank := range []int{0, 2} {
		raw, rerr := os.ReadFile(filepath.Join(outDir, fmt.Sprintf("fault-%d.json", rank)))
		if rerr != nil {
			dumpChildLog(t, outDir)
			t.Fatalf("survivor rank %d wrote no fault report: %v", rank, rerr)
		}
		var rep procFaultReport
		if jerr := json.Unmarshal(raw, &rep); jerr != nil {
			t.Fatalf("parsing rank %d fault report: %v", rank, jerr)
		}
		if rep.Kind != FaultTransport {
			t.Errorf("rank %d observed fault kind %v, want FaultTransport", rank, rep.Kind)
		}
		if rep.Location != 1 {
			t.Errorf("rank %d fault names location %d, want 1", rank, rep.Location)
		}
		if !strings.Contains(rep.Msg, "rank 1") {
			t.Errorf("rank %d fault message does not name the dead rank: %q", rank, rep.Msg)
		}
	}
}
