package runtime

import (
	"sync"
	"testing"
)

// seqObj records the order in which operations reach it.
type seqObj struct {
	mu  sync.Mutex
	log []int64
}

func (s *seqObj) append(v int64) {
	s.mu.Lock()
	s.log = append(s.log, v)
	s.mu.Unlock()
}

func TestAsyncRMIBulkDeliversWholeBatchAsOneMessage(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &seqObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			vals := []int64{1, 2, 3, 4, 5}
			loc.AsyncRMIBulk(1, h, len(vals), 8*len(vals), func(o any, _ *Location) {
				for _, v := range vals {
					o.(*seqObj).append(v)
				}
			})
		}
		loc.Fence()
		if loc.ID() == 1 {
			if len(obj.log) != 5 {
				t.Errorf("bulk batch delivered %d ops, want 5", len(obj.log))
			}
		}
	})
	s := m.Stats()
	if s.BulkRMIs != 1 {
		t.Errorf("BulkRMIs = %d, want 1", s.BulkRMIs)
	}
	if s.BulkOps != 5 {
		t.Errorf("BulkOps = %d, want 5", s.BulkOps)
	}
}

// TestBulkFIFOWithBufferedAndUrgentTraffic pins the ordering guarantee the
// containers' consistency model relies on: per (source, destination) pair,
// buffered per-element requests, bulk batches, urgent requests and
// synchronous requests all execute in invocation order, because every
// flavour that bypasses the aggregation buffer flushes it first.
func TestBulkFIFOWithBufferedAndUrgentTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Aggregation = 8 // keep per-element requests buffered between flushes
	m := NewMachine(2, cfg)
	const rounds = 50
	m.Execute(func(loc *Location) {
		obj := &seqObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			next := int64(0)
			emit := func() int64 { v := next; next++; return v }
			for r := 0; r < rounds; r++ {
				// A few buffered per-element requests (fewer than the
				// aggregation factor, so they sit in the buffer)...
				for i := 0; i < 3; i++ {
					v := emit()
					loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*seqObj).append(v) })
				}
				// ...then a bulk batch that must not overtake them...
				vals := []int64{emit(), emit(), emit()}
				loc.AsyncRMIBulk(1, h, len(vals), 8*len(vals), func(o any, _ *Location) {
					for _, v := range vals {
						o.(*seqObj).append(v)
					}
				})
				// ...more buffered traffic...
				for i := 0; i < 2; i++ {
					v := emit()
					loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*seqObj).append(v) })
				}
				// ...an urgent request...
				{
					v := emit()
					loc.AsyncRMIUrgent(1, h, func(o any, _ *Location) { o.(*seqObj).append(v) })
				}
				// ...and a synchronous request closing the round.
				{
					v := emit()
					SyncRMIT(loc, 1, h, func(o any, _ *Location) int64 {
						o.(*seqObj).append(v)
						return v
					})
				}
			}
		}
		loc.Fence()
		if loc.ID() == 1 {
			want := int64(rounds * 10)
			if int64(len(obj.log)) != want {
				t.Fatalf("received %d ops, want %d", len(obj.log), want)
			}
			for i, v := range obj.log {
				if v != int64(i) {
					t.Fatalf("op %d carried %d: FIFO order violated across bulk/urgent/sync interleaving", i, v)
				}
			}
		}
	})
}

// TestHandleTableSnapshotUnderChurn exercises the copy-on-write handle table:
// lookups through RMIs must keep resolving while other handles register and
// unregister concurrently.
func TestHandleTableSnapshotUnderChurn(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		stable := &seqObj{}
		h := loc.RegisterObject(stable)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := 0; i < 200; i++ {
				v := int64(i)
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*seqObj).append(v) })
			}
		} else {
			// Churn the registry while traffic resolves the stable handle.
			for i := 0; i < 200; i++ {
				tmp := loc.RegisterObject(&seqObj{})
				loc.UnregisterObject(tmp)
			}
		}
		loc.Fence()
		if loc.ID() == 1 && len(stable.log) != 200 {
			t.Errorf("stable object received %d ops, want 200", len(stable.log))
		}
	})
}

func TestSyncAndSplitAccountBytes(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &seqObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			SyncRMIT(loc, 1, h, func(o any, _ *Location) int64 { return 7 })
			SplitRMIT(loc, 1, h, func(o any, _ *Location) int64 { return 9 }).Get()
			loc.AsyncRMIUrgent(1, h, func(o any, _ *Location) {})
		}
		loc.Fence()
	})
	s := m.Stats()
	// Each flavour accounts at least the request descriptor; sync and split
	// also account their response payloads.
	want := int64(3*requestOverheadBytes + 2*8)
	if s.BytesSimulated < want {
		t.Errorf("BytesSimulated = %d, want >= %d (sync/split/urgent must feed byte accounting)", s.BytesSimulated, want)
	}
}
