package runtime

import (
	goruntime "runtime"
	"strings"
	"testing"
	"time"
)

// runtimeGoroutines returns the stacks of goroutines still executing
// runtime- or transport-owned code: server loops, wire readers/writers,
// watchdogs, chaos fault goroutines.  The calling test goroutine (and the
// testing harness around it) is excluded, as are goroutines that merely
// parked in the standard library with no frame of ours on the stack.
func runtimeGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "testing.(*M).Run") {
			continue
		}
		if !strings.Contains(g, "repro/internal/runtime") && !strings.Contains(g, "repro/internal/transport") {
			continue
		}
		out = append(out, g)
	}
	return out
}

// assertNoRuntimeGoroutines fails the test if runtime-owned goroutines
// survive past the deadline.  Every Execute/ExecuteErr — including faulted
// and aborted ones — must leave zero such goroutines behind; goroutines
// mid-exit are given a short grace to finish unwinding.
func assertNoRuntimeGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = runtimeGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%d runtime-owned goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}
