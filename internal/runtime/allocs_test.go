package runtime

import "testing"

// TestRMIAllocsPerOp pins the steady-state allocation cost of the RMI hot
// path with testing.AllocsPerRun, so an accidental re-introduction of a
// per-request allocation (a capturing closure, an unpooled request, a fresh
// response channel) fails the ordinary test suite — not just the advisory
// benchmarks.  AllocsPerRun reads global memstats, so the measured figure
// includes the serving location's delivery work too; the bounds below leave
// room for that while still catching a per-op regression of one whole
// allocation.
func TestRMIAllocsPerOp(t *testing.T) {
	const (
		maxAsyncAllocs = 1.0 // allocs per AsyncRMIArg issue+delivery
		maxBulkAllocs  = 2.0 // allocs per AsyncRMIBulkArg destination flush
	)
	var asyncAllocs, bulkAllocs float64
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		h := loc.RegisterObject(&benchSink{})
		loc.Barrier()
		if loc.ID() == 0 {
			arg := any(int64(1))
			// Warm the request, batch and message pools so the measurement
			// sees the steady state, not pool growth.
			for i := 0; i < 4096; i++ {
				loc.AsyncRMIArg(1, h, 0, bumpArg, arg)
			}
			loc.OneSidedFence()
			asyncAllocs = testing.AllocsPerRun(4000, func() {
				loc.AsyncRMIArg(1, h, 0, bumpArg, arg)
			})
			loc.OneSidedFence()
			for i := 0; i < 1024; i++ {
				loc.AsyncRMIBulkArg(1, h, 64, 512, bumpArg, arg)
			}
			loc.OneSidedFence()
			bulkAllocs = testing.AllocsPerRun(4000, func() {
				loc.AsyncRMIBulkArg(1, h, 64, 512, bumpArg, arg)
			})
			loc.OneSidedFence()
		}
		loc.Barrier()
	})
	if asyncAllocs > maxAsyncAllocs {
		t.Errorf("AsyncRMIArg allocates %.2f allocs/op, want <= %.0f", asyncAllocs, maxAsyncAllocs)
	}
	if bulkAllocs > maxBulkAllocs {
		t.Errorf("AsyncRMIBulkArg allocates %.2f allocs/flush, want <= %.0f", bulkAllocs, maxBulkAllocs)
	}
}
