package runtime

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// This file is the HUB side of multi-process execution: Launch starts one
// child process per location, serves the control plane they collectively
// synchronise over, and supervises their lifetime — a child that dies
// without saying goodbye becomes a fatal abort broadcast to the survivors,
// so a killed rank surfaces as a structured MachineFault everywhere instead
// of a hung job.  cmd/pcflaunch is a thin flag wrapper around Launch;
// LaunchSelf re-executes the current binary (the pcfbench -transport=proc
// parent mode and the test suite use it).

// LaunchSpec describes a multi-process job.
type LaunchSpec struct {
	// NProcs is the number of child processes (= machine locations).
	NProcs int
	// Prog and Args name the child command line (the same SPMD program is
	// started NProcs times; ranks differ only in environment).
	Prog string
	Args []string
	// Env is appended to the inherited environment of every child (the
	// launcher's own PCF_PROC_* variables are always set last).
	Env []string
	// Stdout and Stderr receive the children's combined output; nil means
	// the launcher's own streams.
	Stdout, Stderr *os.File
	// Grace bounds how long survivors may keep running after the first
	// child failure before they are killed (default 15s — long enough for
	// the abort broadcast to give them a structured MachineFault first).
	Grace time.Duration
}

const (
	defaultLaunchGrace   = 15 * time.Second
	launchBringUpTimeout = 60 * time.Second
)

// launchChild is the hub's per-rank bookkeeping.
type launchChild struct {
	rank int
	conn net.Conn
	enc  *gob.Encoder
	mu   sync.Mutex    // serialises enc
	done chan struct{} // closed when the control stream has been read to its end
	bye  bool
}

func (c *launchChild) send(msg *ctlMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(msg)
}

// launchHub matches collective rounds and relays faults between children.
type launchHub struct {
	n        int
	mu       sync.Mutex
	children []*launchChild
	rounds   map[uint64][][]byte // round contributions by sequence number
	counts   map[uint64]int
	fatal    bool
	firstErr error
}

func newLaunchHub(n int) *launchHub {
	return &launchHub{
		n:        n,
		children: make([]*launchChild, n),
		rounds:   make(map[uint64][][]byte),
		counts:   make(map[uint64]int),
	}
}

// broadcast sends msg to every connected child.
func (h *launchHub) broadcast(msg *ctlMsg) {
	h.mu.Lock()
	kids := append([]*launchChild(nil), h.children...)
	h.mu.Unlock()
	for _, c := range kids {
		if c != nil {
			_ = c.send(msg)
		}
	}
}

// fail records the job's first error and broadcasts a fatal abort so every
// surviving rank turns it into a structured MachineFault.
func (h *launchHub) fail(rank int, err error) {
	h.mu.Lock()
	if h.fatal {
		h.mu.Unlock()
		return
	}
	h.fatal = true
	if h.firstErr == nil {
		h.firstErr = err
	}
	h.mu.Unlock()
	h.broadcast(&ctlMsg{Kind: ctlAbort, Fault: &ProcFault{
		Location: rank, Kind: FaultTransport, Msg: err.Error(), Fatal: true,
	}})
}

// serve reads one child's control stream until it says goodbye (or dies).
// dec must be the decoder that read the child's hello: a gob stream defines
// each type once, so a second decoder on the same connection cannot follow.
func (h *launchHub) serve(c *launchChild, dec *gob.Decoder) {
	defer close(c.done)
	for {
		var msg ctlMsg
		if err := dec.Decode(&msg); err != nil {
			h.mu.Lock()
			clean := c.bye || h.fatal
			h.mu.Unlock()
			if !clean {
				h.fail(c.rank, fmt.Errorf("rank %d control connection lost before shutdown: %v", c.rank, err))
			}
			return
		}
		switch msg.Kind {
		case ctlRound:
			h.mu.Lock()
			slots, ok := h.rounds[msg.Seq]
			if !ok {
				slots = make([][]byte, h.n)
				h.rounds[msg.Seq] = slots
			}
			if slots[c.rank] == nil {
				h.counts[msg.Seq]++
			}
			slots[c.rank] = msg.Payload
			if msg.Payload == nil {
				slots[c.rank] = []byte{} // distinguish "contributed nil" from "absent"
			}
			done := h.counts[msg.Seq] == h.n
			if done {
				delete(h.rounds, msg.Seq)
				delete(h.counts, msg.Seq)
			}
			h.mu.Unlock()
			if done {
				h.broadcast(&ctlMsg{Kind: ctlRoundDone, Seq: msg.Seq, Payloads: slots})
			}
		case ctlFault:
			// Relay to everyone (including the reporter — it ignores its own
			// echo) so the whole job aborts the faulted run together.
			h.broadcast(&ctlMsg{Kind: ctlAbort, Fault: msg.Fault})
		case ctlBye:
			h.mu.Lock()
			c.bye = true
			h.mu.Unlock()
		}
	}
}

// Launch runs spec.NProcs copies of the program as a multi-process SPMD job
// and blocks until every child exited.  It returns nil when all children
// shut down cleanly, or the first failure (a child that exited nonzero, was
// killed, or lost its control connection mid-run).
func Launch(spec LaunchSpec) error {
	if spec.NProcs <= 0 {
		return fmt.Errorf("runtime: launch needs at least one process, got %d", spec.NProcs)
	}
	if spec.Prog == "" {
		return fmt.Errorf("runtime: launch needs a program")
	}
	grace := spec.Grace
	if grace <= 0 {
		grace = defaultLaunchGrace
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("runtime: launch control listener: %w", err)
	}
	defer ln.Close()
	hub := newLaunchHub(spec.NProcs)

	// Accept the children's hellos.  Children not checked in within the
	// dial timeout window are a bring-up failure.
	accepted := make(chan error, 1)
	go func() {
		for i := 0; i < spec.NProcs; i++ {
			conn, err := ln.Accept()
			if err != nil {
				accepted <- fmt.Errorf("runtime: launch accept: %w", err)
				return
			}
			dec := gob.NewDecoder(conn)
			var hello ctlMsg
			if err := dec.Decode(&hello); err != nil || hello.Kind != ctlHello {
				accepted <- fmt.Errorf("runtime: launch handshake: %v (kind %d)", err, hello.Kind)
				return
			}
			if hello.Rank < 0 || hello.Rank >= spec.NProcs {
				accepted <- fmt.Errorf("runtime: launch hello from rank %d outside [0,%d)", hello.Rank, spec.NProcs)
				return
			}
			c := &launchChild{rank: hello.Rank, conn: conn, enc: gob.NewEncoder(conn), done: make(chan struct{})}
			hub.mu.Lock()
			dup := hub.children[hello.Rank] != nil
			if !dup {
				hub.children[hello.Rank] = c
			}
			hub.mu.Unlock()
			if dup {
				accepted <- fmt.Errorf("runtime: launch: two children claim rank %d", hello.Rank)
				return
			}
			go hub.serve(c, dec)
		}
		accepted <- nil
	}()

	// Spawn the children.
	cmds := make([]*exec.Cmd, spec.NProcs)
	for i := 0; i < spec.NProcs; i++ {
		cmd := exec.Command(spec.Prog, spec.Args...)
		cmd.Env = append(os.Environ(), spec.Env...)
		cmd.Env = append(cmd.Env,
			fmt.Sprintf("%s=%d", procRankEnv, i),
			fmt.Sprintf("%s=%d", procNEnv, spec.NProcs),
			fmt.Sprintf("%s=%s", procCtlEnv, ln.Addr().String()),
		)
		if spec.Stdout != nil {
			cmd.Stdout = spec.Stdout
		} else {
			cmd.Stdout = os.Stdout
		}
		if spec.Stderr != nil {
			cmd.Stderr = spec.Stderr
		} else {
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			hub.fail(i, fmt.Errorf("rank %d failed to start: %w", i, err))
			for _, prev := range cmds[:i] {
				_ = prev.Process.Kill()
			}
			return fmt.Errorf("runtime: launch rank %d: %w", i, err)
		}
		cmds[i] = cmd
	}

	// Supervise: wait for every child; the first failure arms the grace
	// timer after which survivors are killed (they normally exit on their
	// own once the fatal abort reaches their machine).
	var wg sync.WaitGroup
	exits := make([]error, spec.NProcs)
	firstFail := make(chan struct{})
	var failOnce sync.Once
	for i, cmd := range cmds {
		wg.Add(1)
		go func(rank int, cmd *exec.Cmd) {
			defer wg.Done()
			err := cmd.Wait()
			exits[rank] = err
			hub.mu.Lock()
			c := hub.children[rank]
			hub.mu.Unlock()
			if err == nil && c != nil {
				// The child has exited; its goodbye may still be in flight on
				// the control socket.  Wait for the stream to be read to its
				// end before judging the shutdown.
				select {
				case <-c.done:
				case <-time.After(5 * time.Second):
				}
			}
			hub.mu.Lock()
			clean := err == nil && c != nil && c.bye
			hub.mu.Unlock()
			if !clean {
				if err == nil {
					err = fmt.Errorf("rank %d exited without completing shutdown", rank)
				} else {
					err = fmt.Errorf("rank %d: %w", rank, err)
				}
				hub.fail(rank, err)
				failOnce.Do(func() { close(firstFail) })
			}
		}(i, cmd)
	}
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()

	// Bring-up: all hellos must arrive before any collective round can run.
	// A child dying (or hanging) before its hello fails the job rather than
	// blocking the launcher forever.
	bringUp := time.NewTimer(launchBringUpTimeout)
	defer bringUp.Stop()
	select {
	case err := <-accepted:
		if err != nil {
			hub.fail(-1, err)
			failOnce.Do(func() { close(firstFail) })
		} else {
			hub.broadcast(&ctlMsg{Kind: ctlReady})
		}
	case <-firstFail:
	case <-bringUp.C:
		hub.fail(-1, fmt.Errorf("children failed to check in within %v", launchBringUpTimeout))
		failOnce.Do(func() { close(firstFail) })
	}

	select {
	case <-allDone:
	case <-firstFail:
		select {
		case <-allDone:
		case <-time.After(grace):
			// Kill everything still running; a Kill on an already-exited
			// child is a harmless error.
			for _, cmd := range cmds {
				_ = cmd.Process.Kill()
			}
			<-allDone
		}
	}

	hub.mu.Lock()
	err = hub.firstErr
	hub.mu.Unlock()
	if err != nil {
		return fmt.Errorf("runtime: launch: %w", err)
	}
	for rank, e := range exits {
		if e != nil {
			return fmt.Errorf("runtime: launch: rank %d: %w", rank, e)
		}
	}
	return nil
}

// LaunchSelf re-executes the current binary n times as a multi-process job
// with the same command line, appending extraEnv to each child's
// environment.  A program using it branches on ChildMain():
//
//	func main() {
//		if runtime.ChildMain() {        // child: run the SPMD program
//			defer runtime.ChildDone()
//			...
//			return
//		}
//		if err := runtime.LaunchSelf(4); err != nil { ... } // parent
//	}
func LaunchSelf(n int, extraEnv ...string) error {
	prog, err := os.Executable()
	if err != nil {
		return fmt.Errorf("runtime: launch self: %w", err)
	}
	return Launch(LaunchSpec{
		NProcs: n,
		Prog:   prog,
		Args:   os.Args[1:],
		Env:    extraEnv,
	})
}
