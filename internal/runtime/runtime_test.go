package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// counterObj is a trivial p_object used to exercise RMIs.
type counterObj struct {
	mu    sync.Mutex
	value int64
	log   []int64
}

func (c *counterObj) add(v int64) {
	c.mu.Lock()
	c.value += v
	c.log = append(c.log, v)
	c.mu.Unlock()
}

func (c *counterObj) get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value
}

func TestMachineBasics(t *testing.T) {
	m := NewMachine(4, DefaultConfig())
	if m.NumLocations() != 4 {
		t.Fatalf("NumLocations = %d, want 4", m.NumLocations())
	}
	var ran atomic.Int64
	m.Execute(func(loc *Location) {
		if loc.NumLocations() != 4 {
			t.Errorf("loc.NumLocations = %d, want 4", loc.NumLocations())
		}
		if loc.Machine() != m {
			t.Error("loc.Machine mismatch")
		}
		ran.Add(1)
	})
	if ran.Load() != 4 {
		t.Fatalf("SPMD function ran %d times, want 4", ran.Load())
	}
}

func TestNewMachinePanicsOnZeroLocations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 locations")
		}
	}()
	NewMachine(0, DefaultConfig())
}

func TestAsyncRMIAndFence(t *testing.T) {
	m := NewMachine(4, DefaultConfig())
	total := int64(0)
	var totMu sync.Mutex
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		// Every location sends 100 increments to every other location.
		for d := 0; d < loc.NumLocations(); d++ {
			for i := 0; i < 100; i++ {
				loc.AsyncRMI(d, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
		}
		loc.Fence()
		got := obj.get()
		if got != int64(100*loc.NumLocations()) {
			t.Errorf("loc %d: counter = %d, want %d", loc.ID(), got, 100*loc.NumLocations())
		}
		totMu.Lock()
		total += got
		totMu.Unlock()
	})
	if total != 4*400 {
		t.Fatalf("total = %d, want %d", total, 4*400)
	}
}

func TestAsyncRMIOrderingPerDestination(t *testing.T) {
	// Requests from one location to one destination must execute in
	// program order even with aggregation enabled.
	cfg := DefaultConfig()
	cfg.Aggregation = 7
	m := NewMachine(2, cfg)
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 1000; i++ {
				v := i
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(v) })
			}
		}
		loc.Fence()
		if loc.ID() == 1 {
			if len(obj.log) != 1000 {
				t.Fatalf("received %d requests, want 1000", len(obj.log))
			}
			for i, v := range obj.log {
				if v != int64(i) {
					t.Fatalf("request %d carried %d, want %d (ordering violated)", i, v, i)
				}
			}
		}
	})
}

func TestSyncRMI(t *testing.T) {
	m := NewMachine(3, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &counterObj{value: int64(loc.ID()) * 10}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		for d := 0; d < loc.NumLocations(); d++ {
			got := SyncRMIT(loc, d, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
			if got != int64(d)*10 {
				t.Errorf("sync rmi to %d returned %d, want %d", d, got, d*10)
			}
		}
		loc.Fence()
	})
}

func TestSplitPhaseRMI(t *testing.T) {
	m := NewMachine(4, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &counterObj{value: int64(loc.ID()) + 1}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		futs := make([]*FutureOf[int64], loc.NumLocations())
		for d := 0; d < loc.NumLocations(); d++ {
			futs[d] = SplitRMIT(loc, d, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
		}
		var sum int64
		for d, f := range futs {
			v := f.Get()
			if v != int64(d)+1 {
				t.Errorf("future from %d = %d, want %d", d, v, d+1)
			}
			sum += v
		}
		want := int64(loc.NumLocations() * (loc.NumLocations() + 1) / 2)
		if sum != want {
			t.Errorf("sum = %d, want %d", sum, want)
		}
		loc.Fence()
	})
}

func TestFutureSemantics(t *testing.T) {
	f := NewFuture()
	if f.Done() {
		t.Fatal("new future should not be done")
	}
	if _, ok := f.TryGet(); ok {
		t.Fatal("TryGet on incomplete future should fail")
	}
	go func() {
		time.Sleep(time.Millisecond)
		f.Complete(42)
	}()
	if got := f.Get(); got.(int) != 42 {
		t.Fatalf("Get = %v, want 42", got)
	}
	if v, ok := f.TryGet(); !ok || v.(int) != 42 {
		t.Fatalf("TryGet = %v,%v; want 42,true", v, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double completion should panic")
		}
	}()
	f.Complete(43)
}

func TestCompletedFuture(t *testing.T) {
	f := CompletedFuture("hi")
	if !f.Done() {
		t.Fatal("CompletedFuture should be done")
	}
	if f.Get() != "hi" {
		t.Fatalf("Get = %q, want hi", f.Get())
	}
	if v, ok := f.TryGet(); !ok || v != "hi" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
}

func TestCollectives(t *testing.T) {
	m := NewMachine(5, DefaultConfig())
	m.Execute(func(loc *Location) {
		// Broadcast.
		v := BroadcastT(loc, 2, loc.ID()*100)
		if v != 200 {
			t.Errorf("broadcast got %d, want 200", v)
		}
		// AllReduce sum of ids.
		s := AllReduceSum(loc, int64(loc.ID()))
		if s != 10 {
			t.Errorf("allreduce sum = %d, want 10", s)
		}
		// AllReduce max.
		mx := AllReduceMax(loc, int64(loc.ID()))
		if mx != 4 {
			t.Errorf("allreduce max = %d, want 4", mx)
		}
		// AllGather.
		g := AllGatherT(loc, loc.ID())
		for i, x := range g {
			if x != i {
				t.Errorf("allgather[%d] = %d", i, x)
			}
		}
		// ExclusiveScan.
		pre := ExclusiveScan(loc, 1, 0, func(a, b int) int { return a + b })
		if pre != loc.ID() {
			t.Errorf("exclusive scan = %d, want %d", pre, loc.ID())
		}
		// Reduce to root.
		r := loc.Reduce(0, int64(1), func(a, b any) any { return a.(int64) + b.(int64) })
		if loc.ID() == 0 {
			if r.(int64) != 5 {
				t.Errorf("reduce = %v, want 5", r)
			}
		} else if r != nil {
			t.Errorf("non-root reduce = %v, want nil", r)
		}
		// Float reduction.
		fs := AllReduceFloat(loc, 0.5)
		if fs != 2.5 {
			t.Errorf("float allreduce = %v, want 2.5", fs)
		}
	})
}

func TestOneSidedFence(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := 0; i < 500; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			loc.OneSidedFence()
			got := SyncRMIT(loc, 1, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
			if got != 500 {
				t.Errorf("after one-sided fence remote counter = %d, want 500", got)
			}
		}
		loc.Fence()
	})
}

func TestAggregationReducesMessages(t *testing.T) {
	run := func(agg int) int64 {
		cfg := DefaultConfig()
		cfg.Aggregation = agg
		m := NewMachine(2, cfg)
		m.Execute(func(loc *Location) {
			obj := &counterObj{}
			h := loc.RegisterObject(obj)
			loc.Barrier()
			if loc.ID() == 0 {
				for i := 0; i < 1024; i++ {
					loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
				}
			}
			loc.Fence()
		})
		return m.Stats().MessagesSent
	}
	noAgg := run(1)
	agg := run(32)
	if agg >= noAgg {
		t.Fatalf("aggregation did not reduce message count: %d (agg) vs %d (no agg)", agg, noAgg)
	}
}

func TestLocalVsRemoteCounting(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := 0; i < 10; i++ {
				loc.AsyncRMI(0, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			for i := 0; i < 7; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			if loc.LocalRMIs() != 10 {
				t.Errorf("local RMIs = %d, want 10", loc.LocalRMIs())
			}
			if loc.RemoteRMIs() != 7 {
				t.Errorf("remote RMIs = %d, want 7", loc.RemoteRMIs())
			}
		}
		loc.Fence()
	})
}

func TestRemoteDelayIsApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Aggregation = 1
	cfg.RemoteDelay = func(src, dst int) time.Duration { return 2 * time.Millisecond }
	m := NewMachine(2, cfg)
	start := time.Now()
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := 0; i < 5; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
		}
		loc.Fence()
	})
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("expected at least 10ms of injected latency, got %v", elapsed)
	}
}

func TestRegisterUnregister(t *testing.T) {
	m := NewMachine(1, DefaultConfig())
	m.Execute(func(loc *Location) {
		a := &counterObj{}
		b := &counterObj{}
		ha := loc.RegisterObject(a)
		hb := loc.RegisterObject(b)
		if ha == hb {
			t.Fatal("distinct objects received the same handle")
		}
		loc.AsyncRMI(0, hb, func(o any, _ *Location) {
			if o != b {
				t.Error("handle resolved to the wrong object")
			}
		})
		loc.UnregisterObject(ha)
		defer func() {
			if recover() == nil {
				t.Error("expected panic when resolving an unregistered handle")
			}
		}()
		loc.object(ha)
	})
}

func TestExecutorRunsDependentTasks(t *testing.T) {
	m := NewMachine(4, DefaultConfig())
	var order sync.Map
	var seq atomic.Int64
	m.Execute(func(loc *Location) {
		ex := NewExecutor(loc)
		loc.Barrier()
		// Location 0 builds a chain of tasks 0 -> 1 -> 2 -> 3, one per
		// location, plus an independent task per location.
		if loc.ID() == 0 {
			for i := 0; i < 4; i++ {
				id := TaskID(i)
				ex.AddTask(id, i, func(l *Location) {
					order.Store(id, seq.Add(1))
				})
			}
			for i := 0; i < 3; i++ {
				ex.AddDependency(TaskID(i), i, TaskID(i+1), i+1)
			}
			for i := 0; i < 4; i++ {
				id := TaskID(100 + i)
				ex.AddTask(id, i, func(l *Location) { order.Store(id, seq.Add(1)) })
			}
		}
		ex.Run()
	})
	// The chain must have executed in order.
	var prev int64
	for i := 0; i < 4; i++ {
		v, ok := order.Load(TaskID(i))
		if !ok {
			t.Fatalf("task %d never ran", i)
		}
		if v.(int64) < prev {
			t.Fatalf("task %d ran out of order", i)
		}
		prev = v.(int64)
	}
	for i := 0; i < 4; i++ {
		if _, ok := order.Load(TaskID(100 + i)); !ok {
			t.Fatalf("independent task %d never ran", 100+i)
		}
	}
}

func TestExecutorReset(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		ex := NewExecutor(loc)
		loc.Barrier()
		var n atomic.Int64
		if loc.ID() == 0 {
			ex.AddTask(1, 0, func(l *Location) { n.Add(1) })
			ex.AddTask(2, 1, func(l *Location) { n.Add(1) })
		}
		ex.Run()
		ex.Reset()
		if loc.ID() == 0 {
			ex.AddTask(1, 1, func(l *Location) { n.Add(1) })
		}
		ex.Run()
	})
}

func TestPayloadBytes(t *testing.T) {
	if PayloadBytes(5) != 8 {
		t.Errorf("default payload size = %d, want 8", PayloadBytes(5))
	}
	if PayloadBytes(sized{}) != 128 {
		t.Errorf("sized payload = %d, want 128", PayloadBytes(sized{}))
	}
}

type sized struct{}

func (sized) ByteSize() int { return 128 }

func TestStatsCounters(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			SyncRMIT(loc, 1, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
			SplitRMIT(loc, 1, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() }).Get()
		}
		loc.Fence()
	})
	s := m.Stats()
	if s.AsyncRMIs != 1 || s.SyncRMIs != 1 || s.SplitRMIs != 1 {
		t.Fatalf("stats async/sync/split = %d/%d/%d, want 1/1/1",
			s.AsyncRMIs, s.SyncRMIs, s.SplitRMIs)
	}
	if s.Fences != 2 {
		t.Fatalf("fence count = %d, want 2", s.Fences)
	}
	if s.RMIsHandled == 0 {
		t.Fatal("no RMIs handled")
	}
}

func TestExecuteOnHelper(t *testing.T) {
	var n atomic.Int64
	m := ExecuteOn(3, func(loc *Location) { n.Add(1) })
	if n.Load() != 3 {
		t.Fatalf("ran %d times, want 3", n.Load())
	}
	if m.NumLocations() != 3 {
		t.Fatalf("machine has %d locations", m.NumLocations())
	}
}

// TestMCMPerElementOrdering checks the paper's memory-consistency guarantee
// that asynchronous writes followed by a synchronous read of the *same*
// element from the same location observe the last write (program order per
// element), without any fence in between.
func TestMCMPerElementOrdering(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	m.Execute(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := 0; i < 50; i++ {
				loc.AsyncRMI(1, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
			}
			// Synchronous read to the same destination: must observe all
			// 50 asynchronous writes because per (src,dst) requests are
			// FIFO and the sync request flushes the aggregation buffer.
			got := SyncRMIT(loc, 1, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
			if got != 50 {
				t.Errorf("sync read after async writes = %d, want 50", got)
			}
		}
		loc.Fence()
	})
}
