package runtime

import "sync"

// mailbox is an unbounded, FIFO, multiple-producer single-consumer queue of
// RMI requests.  Unbounded capacity is required so that a sender never
// blocks on a receiver that is itself blocked sending (which would deadlock
// chains of forwarded requests).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*rmiRequest
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a request.  It is safe to call from any goroutine.
func (m *mailbox) push(r *rmiRequest) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, r)
	m.cond.Signal()
	m.mu.Unlock()
}

// pushAll enqueues a batch of requests atomically, preserving their order.
func (m *mailbox) pushAll(rs []*rmiRequest) {
	if len(rs) == 0 {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, rs...)
	m.cond.Signal()
	m.mu.Unlock()
}

// pop dequeues the next request, blocking until one is available or the
// mailbox is closed.  It returns nil when the mailbox is closed and drained.
func (m *mailbox) pop() *rmiRequest {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return nil
	}
	r := m.queue[0]
	m.queue = m.queue[1:]
	return r
}

// close wakes the consumer; pending requests are still delivered before pop
// starts returning nil.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// length reports the number of queued requests (used by tests and stats).
func (m *mailbox) length() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
