package runtime

import "sync"

// mailbox is an unbounded, FIFO, multiple-producer single-consumer queue of
// RMI requests.  Unbounded capacity is required so that a sender never
// blocks on a receiver that is itself blocked sending (which would deadlock
// chains of forwarded requests).
//
// The queue is a two-stack design: producers append to the in slice under
// the lock, and the single consumer swaps the whole slice out with popBatch,
// so draining n requests costs one lock acquisition instead of n (the old
// head-slicing pop paid a lock round-trip and an O(n) copy per request).
// The consumer hands its drained slice back on the next call, so steady
// state runs without allocation.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	in     []*rmiRequest
	closed bool
	// aborted is the machine-abort interrupt: unlike closed (which still
	// delivers queued requests), an aborted mailbox drops its queue and
	// wakes the consumer immediately — the machine is unwinding and the
	// requests' senders have already been unblocked.
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues a request.  It is safe to call from any goroutine.
func (m *mailbox) push(r *rmiRequest) {
	m.mu.Lock()
	if m.closed || m.aborted {
		m.mu.Unlock()
		return
	}
	m.in = append(m.in, r)
	m.cond.Signal()
	m.mu.Unlock()
}

// pushAll enqueues a batch of requests atomically, preserving their order.
// The caller keeps ownership of rs; its elements are copied out.
func (m *mailbox) pushAll(rs []*rmiRequest) {
	if len(rs) == 0 {
		return
	}
	m.mu.Lock()
	if m.closed || m.aborted {
		m.mu.Unlock()
		return
	}
	m.in = append(m.in, rs...)
	m.cond.Signal()
	m.mu.Unlock()
}

// popBatch blocks until at least one request is queued (or the mailbox is
// closed) and then drains the entire queue in one lock acquisition,
// returning the requests in FIFO order.  spare, if non-nil, becomes the new
// producer-side buffer, so the consumer can recycle the slice it finished
// processing.  It returns nil when the mailbox is closed and drained.
func (m *mailbox) popBatch(spare []*rmiRequest) []*rmiRequest {
	m.mu.Lock()
	for len(m.in) == 0 && !m.closed && !m.aborted {
		m.cond.Wait()
	}
	if m.aborted || len(m.in) == 0 {
		m.in = nil
		m.mu.Unlock()
		return nil
	}
	batch := m.in
	if spare != nil {
		m.in = spare[:0]
	} else {
		m.in = nil
	}
	m.mu.Unlock()
	return batch
}

// close wakes the consumer; pending requests are still delivered before
// popBatch starts returning nil.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// interrupt is the machine-abort path: queued requests are dropped and the
// consumer wakes immediately, so a server goroutine blocked here cannot
// outlive an aborted run.
func (m *mailbox) interrupt() {
	m.mu.Lock()
	m.aborted = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// reopen resets the mailbox for a fresh Execute run (machines are reusable,
// including after an aborted run).
func (m *mailbox) reopen() {
	m.mu.Lock()
	m.closed = false
	m.aborted = false
	m.in = nil
	m.mu.Unlock()
}

// length reports the number of queued, not yet drained requests (used by
// tests).  Requests already handed to the consumer are not counted.
func (m *mailbox) length() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.in)
}
