package runtime

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// faultSeed returns the injection seed for this test run.  The CI faults job
// sweeps it through PCF_FAULT_SEED so the suite exercises different (target
// location, trigger point) combinations without code changes.
func faultSeed(t *testing.T) int64 {
	s := os.Getenv("PCF_FAULT_SEED")
	if s == "" {
		return 1
	}
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad PCF_FAULT_SEED %q: %v", s, err)
	}
	return seed
}

// faultTransports is the transport matrix every fault-injection scenario
// runs over: the abort protocol must behave identically whether requests
// move through shared memory, the in-process wire protocol, kernel TCP
// sockets, or the fault-injected chaos wire.
var faultTransports = []struct {
	name    string
	factory TransportFactory
}{
	{"inproc", InprocTransport},
	{"wire", WireTransport},
	{"tcp", TCPLoopbackTransport},
	{"chaos", ChaosTransport(transport.DefaultChaosConfig())},
}

var faultLocationCounts = []int{2, 3, 4, 8}

// faultWorkload is the traffic pattern driven under injection: every
// location sends enough asynchronous RMIs to every other location that any
// seeded trigger point (AfterHandled < 32) is reached, mixed with
// synchronous requests so abort coverage includes blocked response waits,
// then fences.  On a clean run every counter ends at a known value.
func faultWorkload(loc *Location) {
	obj := &counterObj{}
	h := loc.RegisterObject(obj)
	loc.Barrier()
	p := loc.NumLocations()
	for d := 0; d < p; d++ {
		if d == loc.ID() {
			continue
		}
		for i := 0; i < 64; i++ {
			loc.AsyncRMI(d, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
		}
		SyncRMIT(loc, d, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
	}
	loc.Fence()
}

// abortBudget bounds how long any faulted run may take to surface its
// MachineFault: the watchdog deadline used by the tests plus the bounded
// abort drain and unwind, with generous slack for -race and TCP.
const abortBudget = 20 * time.Second

// runFaulted executes the workload expecting a fault and asserts the abort
// contract: a non-nil MachineFault arrives within the budget and no
// runtime-owned goroutine leaks.
func runFaulted(t *testing.T, p int, factory TransportFactory, inj *FaultInjection) *MachineFault {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Transport = factory
	cfg.FaultInjection = inj
	cfg.StallTimeout = time.Second
	m := NewMachine(p, cfg)
	start := time.Now()
	fault := m.ExecuteErr(faultWorkload)
	elapsed := time.Since(start)
	if fault == nil {
		t.Fatal("ExecuteErr returned nil for an injected fault")
	}
	if elapsed > abortBudget {
		t.Fatalf("abort took %v, want < %v", elapsed, abortBudget)
	}
	assertNoRuntimeGoroutines(t)
	return fault
}

// TestHandlerPanicAbortsMachine injects a seeded handler panic and asserts
// the fault names the target location on every transport and location count,
// with every other location unblocked instead of deadlocked.
func TestHandlerPanicAbortsMachine(t *testing.T) {
	seed := faultSeed(t)
	for _, tr := range faultTransports {
		for _, p := range faultLocationCounts {
			t.Run(tr.name+"/p="+strconv.Itoa(p), func(t *testing.T) {
				inj := SeededFaultInjection(seed, p, FaultHandlerPanic)
				fault := runFaulted(t, p, tr.factory, inj)
				if fault.Cause.Kind != FaultHandlerPanic {
					t.Fatalf("cause = %v, want handler panic (fault: %v)", fault.Cause.Kind, fault)
				}
				if fault.Cause.Location != inj.Location {
					t.Fatalf("fault names location %d, injected at %d", fault.Cause.Location, inj.Location)
				}
				if len(fault.Cause.Stack) == 0 {
					t.Fatal("handler panic captured no stack")
				}
				if fault.Status[inj.Location] != StatusFaulted {
					t.Fatalf("target status = %v, want faulted", fault.Status[inj.Location])
				}
				if !strings.Contains(fault.Error(), "location "+strconv.Itoa(inj.Location)) {
					t.Fatalf("fault message %q does not name the faulting location", fault.Error())
				}
			})
		}
	}
}

// TestInjectedStallAbortsMachine injects a seeded mid-handler stall and
// asserts the progress watchdog converts it into a FaultStall attributed to
// the stalled location, with the frozen counters dumped in the message.
func TestInjectedStallAbortsMachine(t *testing.T) {
	seed := faultSeed(t)
	for _, tr := range faultTransports {
		for _, p := range faultLocationCounts {
			t.Run(tr.name+"/p="+strconv.Itoa(p), func(t *testing.T) {
				inj := SeededFaultInjection(seed, p, FaultStall)
				fault := runFaulted(t, p, tr.factory, inj)
				if fault.Cause.Kind != FaultStall {
					t.Fatalf("cause = %v, want stall (fault: %v)", fault.Cause.Kind, fault)
				}
				if fault.Cause.Location != inj.Location {
					t.Fatalf("stall attributed to location %d, injected at %d", fault.Cause.Location, inj.Location)
				}
				msg := fault.Error()
				if !strings.Contains(msg, "no progress for") || !strings.Contains(msg, "mailbox=") {
					t.Fatalf("stall diagnostic %q lacks the counter dump", msg)
				}
			})
		}
	}
}

// TestBodyPanicAbortsMachine panics one location's SPMD body while the
// others park in a barrier; the abort must unwind them and report them as
// unwound, not faulted.
func TestBodyPanicAbortsMachine(t *testing.T) {
	for _, tr := range faultTransports {
		for _, p := range faultLocationCounts {
			t.Run(tr.name+"/p="+strconv.Itoa(p), func(t *testing.T) {
				target := p - 1
				cfg := DefaultConfig()
				cfg.Transport = tr.factory
				m := NewMachine(p, cfg)
				fault := m.ExecuteErr(func(loc *Location) {
					if loc.ID() == target {
						panic("spmd body gave up")
					}
					loc.Barrier()
				})
				if fault == nil {
					t.Fatal("ExecuteErr returned nil")
				}
				if fault.Cause.Kind != FaultBodyPanic || fault.Cause.Location != target {
					t.Fatalf("cause = %v at %d, want body panic at %d", fault.Cause.Kind, fault.Cause.Location, target)
				}
				for id, st := range fault.Status {
					want := StatusUnwound
					if id == target {
						want = StatusFaulted
					}
					if st != want {
						t.Errorf("location %d status = %v, want %v", id, st, want)
					}
				}
				assertNoRuntimeGoroutines(t)
			})
		}
	}
}

// TestExecutePanicsWithMachineFault pins the compatibility contract: Execute
// keeps failing by panic, but the panic value is the structured fault.
func TestExecutePanicsWithMachineFault(t *testing.T) {
	m := NewMachine(2, DefaultConfig())
	defer assertNoRuntimeGoroutines(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Execute did not panic on a faulted run")
		}
		fault, ok := r.(*MachineFault)
		if !ok {
			t.Fatalf("Execute panicked with %T, want *MachineFault", r)
		}
		if fault.Cause.Kind != FaultBodyPanic || fault.Cause.Location != 1 {
			t.Fatalf("unexpected cause: %v", fault.Cause)
		}
	}()
	m.Execute(func(loc *Location) {
		if loc.ID() == 1 {
			panic("boom")
		}
		loc.Barrier()
	})
}

// TestMachineReusableAfterFault asserts an aborted machine can run again:
// the next ExecuteErr starts from reset abort/pending/mailbox state and
// completes cleanly with correct results.  The usual SPMD registration
// discipline still applies across runs — the poisoned location registers its
// representative before dying, so handle counters stay aligned for run two.
func TestMachineReusableAfterFault(t *testing.T) {
	for _, tr := range faultTransports {
		t.Run(tr.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Transport = tr.factory
			m := NewMachine(4, cfg)
			var poison atomic.Bool
			poison.Store(true)
			body := func(loc *Location) {
				obj := &counterObj{}
				h := loc.RegisterObject(obj)
				if poison.Load() && loc.ID() == 2 {
					panic("first run dies")
				}
				loc.Barrier()
				for d := 0; d < loc.NumLocations(); d++ {
					if d == loc.ID() {
						continue
					}
					for i := 0; i < 8; i++ {
						loc.AsyncRMI(d, h, func(o any, _ *Location) { o.(*counterObj).add(1) })
					}
				}
				loc.Fence()
				if got, want := obj.get(), int64(8*(loc.NumLocations()-1)); got != want {
					t.Errorf("loc %d: counter = %d, want %d", loc.ID(), got, want)
				}
			}
			if fault := m.ExecuteErr(body); fault == nil {
				t.Fatal("poisoned run returned nil fault")
			}
			assertNoRuntimeGoroutines(t)
			poison.Store(false)
			if fault := m.ExecuteErr(body); fault != nil {
				t.Fatalf("machine not reusable after abort: %v", fault)
			}
			assertNoRuntimeGoroutines(t)
		})
	}
}

// TestSyncRMIUnblocksOnAbort parks one location in a synchronous RMI whose
// handler stalls forever; the watchdog abort must unwind the blocked caller
// rather than leave it waiting for a response that cannot come.
func TestSyncRMIUnblocksOnAbort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StallTimeout = 500 * time.Millisecond
	cfg.FaultInjection = &FaultInjection{Location: 1, Kind: FaultStall, AfterHandled: 0}
	m := NewMachine(2, cfg)
	start := time.Now()
	fault := m.ExecuteErr(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			SyncRMIT(loc, 1, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
		}
		loc.Fence()
	})
	if fault == nil {
		t.Fatal("stalled sync handler produced no fault")
	}
	if fault.Cause.Kind != FaultStall || fault.Cause.Location != 1 {
		t.Fatalf("cause = %v, want stall at location 1", fault.Cause)
	}
	if elapsed := time.Since(start); elapsed > abortBudget {
		t.Fatalf("blocked SyncRMI held the abort for %v", elapsed)
	}
	if fault.Status[0] != StatusUnwound {
		t.Fatalf("blocked caller status = %v, want unwound", fault.Status[0])
	}
	assertNoRuntimeGoroutines(t)
}

// TestFutureUnblocksOnAbort parks a location on a split-phase future whose
// completion dies with the machine; Get must unwind, not deadlock.
func TestFutureUnblocksOnAbort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StallTimeout = 500 * time.Millisecond
	cfg.FaultInjection = &FaultInjection{Location: 1, Kind: FaultStall, AfterHandled: 0}
	m := NewMachine(2, cfg)
	fault := m.ExecuteErr(func(loc *Location) {
		obj := &counterObj{}
		h := loc.RegisterObject(obj)
		loc.Barrier()
		if loc.ID() == 0 {
			fut := SplitRMIT(loc, 1, h, func(o any, _ *Location) int64 { return o.(*counterObj).get() })
			fut.Get()
		}
		loc.Fence()
	})
	if fault == nil || fault.Cause.Kind != FaultStall {
		t.Fatalf("fault = %v, want stall", fault)
	}
	if fault.Status[0] != StatusUnwound {
		t.Fatalf("future waiter status = %v, want unwound", fault.Status[0])
	}
	assertNoRuntimeGoroutines(t)
}

// TestFaultInjectionFromEnv pins the PCF_CHAOS_PANIC / PCF_CHAOS_STALL
// resolution: a seed in the environment arms every machine built without an
// explicit plan, deterministically.
func TestFaultInjectionFromEnv(t *testing.T) {
	t.Run("panic seed", func(t *testing.T) {
		t.Setenv("PCF_CHAOS_PANIC", "7")
		m := NewMachine(4, DefaultConfig())
		inj := m.Location(0).cfg.FaultInjection
		if inj == nil || inj.Kind != FaultHandlerPanic {
			t.Fatalf("injection = %+v, want a handler-panic plan", inj)
		}
		want := SeededFaultInjection(7, 4, FaultHandlerPanic)
		if *inj != *want {
			t.Fatalf("env plan %+v differs from seeded plan %+v", inj, want)
		}
		fault := m.ExecuteErr(faultWorkload)
		if fault == nil || fault.Cause.Kind != FaultHandlerPanic || fault.Cause.Location != want.Location {
			t.Fatalf("env-armed run returned %v, want handler panic at %d", fault, want.Location)
		}
		assertNoRuntimeGoroutines(t)
	})
	t.Run("stall seed arms watchdog", func(t *testing.T) {
		t.Setenv("PCF_CHAOS_STALL", "3")
		m := NewMachine(4, DefaultConfig())
		inj := m.Location(0).cfg.FaultInjection
		if inj == nil || inj.Kind != FaultStall {
			t.Fatalf("injection = %+v, want a stall plan", inj)
		}
		if m.stallTimeout <= 0 {
			t.Fatal("stall injection without a watchdog would deadlock; default deadline not armed")
		}
	})
	t.Run("bad seed panics", func(t *testing.T) {
		t.Setenv("PCF_CHAOS_PANIC", "not-a-number")
		defer func() {
			if recover() == nil {
				t.Fatal("unparsable PCF_CHAOS_PANIC must panic")
			}
		}()
		NewMachine(2, DefaultConfig())
	})
}

// TestCleanRunReturnsNoFault guards against false positives: the full mixed
// workload with the watchdog armed must complete fault-free on every
// transport, and local-compute phases must never be flagged as stalls.
func TestCleanRunReturnsNoFault(t *testing.T) {
	for _, tr := range faultTransports {
		t.Run(tr.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Transport = tr.factory
			cfg.StallTimeout = 500 * time.Millisecond
			m := NewMachine(4, cfg)
			fault := m.ExecuteErr(func(loc *Location) {
				faultWorkload(loc)
				// Local compute longer than the stall deadline with zero
				// pending requests: the watchdog must stay quiet.
				time.Sleep(700 * time.Millisecond)
				loc.Barrier()
			})
			if fault != nil {
				t.Fatalf("clean run faulted: %v", fault)
			}
			assertNoRuntimeGoroutines(t)
		})
	}
}
